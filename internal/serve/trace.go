package serve

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strings"

	"multijoin/internal/obs"
)

// Request-scoped tracing. Every API request runs against its own
// obs.Recorder carrying a span tree rooted at "request": admission,
// the ladder rungs, and each rung's optimize/execute phases appear as
// child spans whose τ/state attribution comes from guard-ledger diffs
// at the span boundaries. The response body carries the completed tree,
// the Trace-Id header names it, and an incoming W3C traceparent header
// is honored so the service joins a caller's existing trace. The
// request recorder is folded into the server's root recorder in the
// epilogue, so process-level totals still reconcile.

// TraceInfo is the trace section of a successful response: the request's
// completed span tree and its identity.
type TraceInfo struct {
	// TraceID is the request's 32-hex-digit trace identifier — taken
	// from the caller's traceparent header when present, generated
	// otherwise.
	TraceID string `json:"traceId"`
	// DroppedSpans counts spans discarded past the per-request cap.
	DroppedSpans int64 `json:"droppedSpans,omitempty"`
	// Spans is the completed span tree in start order.
	Spans []obs.SpanRecord `json:"spans"`
}

// requestTrace is one request's tracing state: a fresh recorder, the
// open root span, and the wire identity for the trace headers.
type requestTrace struct {
	rec      *obs.Recorder
	root     *obs.Span
	traceID  string
	spanID   string
	endpoint string
	// class is the resolved tenant class, "" until the request decodes.
	class string
}

// startRequestTrace opens the per-request recorder and root span,
// adopting the caller's trace ID from a valid traceparent header or
// minting a fresh one.
func (s *Server) startRequestTrace(r *http.Request) *requestTrace {
	rt := &requestTrace{rec: obs.NewRecorder(), endpoint: r.URL.Path}
	if tid, ok := parseTraceparent(r.Header.Get("Traceparent")); ok {
		rt.traceID = tid
	} else {
		rt.traceID = randHex(16)
	}
	rt.spanID = randHex(8)
	rt.root = rt.rec.StartSpan(obs.SpanRequest)
	rt.root.SetAttr("endpoint", rt.endpoint)
	return rt
}

// traceparentHeader renders the outgoing W3C traceparent value: this
// request's trace with the root span as the parent, sampled.
func (rt *requestTrace) traceparentHeader() string {
	return "00-" + rt.traceID + "-" + rt.spanID + "-01"
}

// parseTraceparent extracts the trace ID from a W3C traceparent header
// (version 00: `00-<32 hex>-<16 hex>-<2 hex>`). Malformed, all-zero, or
// unknown-version values are ignored — a bad header never fails the
// request, the service just starts a fresh trace.
func parseTraceparent(h string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" {
		return "", false
	}
	if !isLowerHex(parts[1], 32) || !isLowerHex(parts[2], 16) || !isLowerHex(parts[3], 2) {
		return "", false
	}
	if allZero(parts[1]) || allZero(parts[2]) {
		return "", false
	}
	return parts[1], true
}

// isLowerHex reports whether s is exactly n lowercase hex digits.
func isLowerHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// allZero reports whether s is entirely '0' digits.
func allZero(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// randHex returns 2n random lowercase hex digits from the system CSPRNG.
func randHex(n int) string {
	buf := make([]byte, n)
	if _, err := rand.Read(buf); err != nil {
		// The CSPRNG is effectively infallible; if it ever is not, an
		// all-ones ID is still a valid (if colliding) trace identity.
		for i := range buf {
			buf[i] = 0xff
		}
	}
	return hex.EncodeToString(buf)
}
