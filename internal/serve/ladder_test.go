package serve

import (
	"context"
	"errors"
	"testing"

	"multijoin/internal/database"
	"multijoin/internal/guard"
	"multijoin/internal/obs"
	"multijoin/internal/paperex"
	"multijoin/internal/relation"
)

// generous is a budget no rung trips on the paper examples.
var generous = guard.Limits{}

// tripping is a budget every searching/executing rung trips on
// immediately (the estimate rung never charges it).
var tripping = guard.Limits{MaxStates: 1}

// TestLadderPerRung is the rung-by-rung contract: when rung k trips,
// rung k+1 answers, the outcome records the answering rung and every
// trip on the way down, and the serve.degraded metrics move.
func TestLadderPerRung(t *testing.T) {
	cases := []struct {
		name     string
		start    Rung
		tripThru Rung // every rung ≤ tripThru gets the tripping budget
		wantRung Rung
		wantTrip int
	}{
		{"exhaustive clean", RungExhaustive, Rung(-1), RungExhaustive, 0},
		{"exhaustive trips to dp", RungExhaustive, RungExhaustive, RungDP, 1},
		{"dp clean", RungDP, Rung(-1), RungDP, 0},
		{"dp trips to yannakakis", RungDP, RungDP, RungYannakakis, 1},
		{"yannakakis clean", RungYannakakis, Rung(-1), RungYannakakis, 0},
		{"yannakakis trips to greedy", RungYannakakis, RungYannakakis, RungGreedy, 1},
		{"dp trips through yannakakis", RungDP, RungYannakakis, RungGreedy, 2},
		{"greedy clean", RungGreedy, Rung(-1), RungGreedy, 0},
		{"greedy trips to estimate", RungGreedy, RungGreedy, RungEstimate, 1},
		{"full descent", RungExhaustive, RungGreedy, RungEstimate, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := paperex.Example5()
			rec := obs.NewRecorder()
			degradedBefore := rec.Counter("serve.degraded").Value()
			out, err := runLadder(ladderRequest{
				ctx:   context.Background(),
				db:    db,
				ev:    database.NewEvaluator(db).WithRecorder(rec),
				rec:   rec,
				start: tc.start,
				limitsFor: func(r Rung) guard.Limits {
					if r <= tc.tripThru {
						return tripping
					}
					return generous
				},
			})
			if err != nil {
				t.Fatalf("ladder failed outright: %v", err)
			}
			if out.rung != tc.wantRung {
				t.Errorf("answered at %v, want %v", out.rung, tc.wantRung)
			}
			if len(out.trips) != tc.wantTrip {
				t.Errorf("%d trips recorded, want %d: %+v", len(out.trips), tc.wantTrip, out.trips)
			}
			for _, tr := range out.trips {
				if !guard.Tripped(tr.err) {
					t.Errorf("rung %v recorded a non-governance error: %v", tr.rung, tr.err)
				}
			}
			// The answer must be a complete, valid strategy whatever the rung.
			if out.strategy == nil || out.strategy.Set() != db.All() {
				t.Fatalf("rung %v answered with an invalid strategy: %v", out.rung, out.strategy)
			}
			if out.estimated != (out.rung == RungEstimate) {
				t.Errorf("estimated = %v at rung %v", out.estimated, out.rung)
			}
			// Degradation metrics move exactly when the answer came from
			// below the start rung.
			gotDegraded := rec.Counter("serve.degraded").Value() - degradedBefore
			if tc.wantTrip > 0 {
				if gotDegraded != 1 {
					t.Errorf("serve.degraded moved by %d, want 1", gotDegraded)
				}
				if rec.Counter("serve.degraded."+tc.wantRung.String()).Value() != 1 {
					t.Errorf("serve.degraded.%s not incremented", tc.wantRung)
				}
				if rec.Counter("serve.trips").Value() != int64(tc.wantTrip) {
					t.Errorf("serve.trips = %d, want %d", rec.Counter("serve.trips").Value(), tc.wantTrip)
				}
			} else if gotDegraded != 0 {
				t.Errorf("undegraded run moved serve.degraded by %d", gotDegraded)
			}
		})
	}
}

// TestLadderEstimateNeverExecutes: the bottom rung answers from
// statistics alone — zero tuples charged, cost flagged estimated.
func TestLadderEstimateNeverExecutes(t *testing.T) {
	db := paperex.Example5()
	rec := obs.NewRecorder()
	out, err := runLadder(ladderRequest{
		ctx:       context.Background(),
		db:        db,
		ev:        database.NewEvaluator(db).WithRecorder(rec),
		rec:       rec,
		start:     RungEstimate,
		limitsFor: func(Rung) guard.Limits { return generous },
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.rung != RungEstimate || !out.estimated {
		t.Fatalf("want an estimate answer, got %+v", out)
	}
	if out.cost <= 0 {
		t.Errorf("estimated cost = %d, want positive", out.cost)
	}
	if got := rec.Counter("eval.tuples").Value(); got != 0 {
		t.Errorf("estimate rung materialized %d tuples", got)
	}
}

// TestLadderDeadDeadlineFailsTyped: when the context is already dead,
// every rung fails and the ladder surfaces one typed error carrying the
// full descent.
func TestLadderDeadDeadlineFailsTyped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	db := paperex.Example5()
	rec := obs.NewRecorder()
	_, err := runLadder(ladderRequest{
		ctx:       ctx,
		db:        db,
		ev:        database.NewEvaluator(db).WithRecorder(rec),
		rec:       rec,
		start:     RungDP,
		limitsFor: func(Rung) guard.Limits { return generous },
	})
	if err == nil {
		t.Fatal("dead context produced an answer")
	}
	if !guard.Tripped(err) {
		t.Fatalf("failure not typed as governance: %v", err)
	}
	var le *ladderError
	if !errors.As(err, &le) || len(le.trips) == 0 {
		t.Fatalf("failure does not carry the descent: %v", err)
	}
}

// TestLadderAnalyzeDegrades: a tripped analysis still yields a plan —
// from the yannakakis rung on this acyclic scheme, or from greedy when
// that rung's budget trips too — and the partial analysis is preserved
// either way.
func TestLadderAnalyzeDegrades(t *testing.T) {
	for _, tc := range []struct {
		name     string
		tripYann bool
		wantRung Rung
	}{
		{"to yannakakis", false, RungYannakakis},
		{"past yannakakis to greedy", true, RungGreedy},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := paperex.Example5()
			rec := obs.NewRecorder()
			out, err := runLadder(ladderRequest{
				ctx:     context.Background(),
				db:      db,
				ev:      database.NewEvaluator(db).WithRecorder(rec),
				rec:     rec,
				start:   RungDP,
				analyze: true,
				limitsFor: func(r Rung) guard.Limits {
					if r == RungDP {
						return guard.Limits{MaxStates: 40}
					}
					if r == RungYannakakis && tc.tripYann {
						return tripping
					}
					return generous
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if out.rung != tc.wantRung {
				t.Fatalf("answered at %v, want %v", out.rung, tc.wantRung)
			}
			if out.analysis == nil || out.analysis.Complete() {
				t.Errorf("partial analysis not preserved: %+v", out.analysis)
			}
		})
	}
}

// TestLadderSkipsYannakakisOnCyclicScheme: the acyclic fast path is not
// a degradation target for cyclic schemes — a DP trip on a triangle
// descends straight to greedy with a single recorded trip.
func TestLadderSkipsYannakakisOnCyclicScheme(t *testing.T) {
	db := database.New(
		relation.FromStrings("R1", "AB", "1 x"),
		relation.FromStrings("R2", "BC", "x 7"),
		relation.FromStrings("R3", "CA", "7 1"),
	)
	rec := obs.NewRecorder()
	out, err := runLadder(ladderRequest{
		ctx:   context.Background(),
		db:    db,
		ev:    database.NewEvaluator(db).WithRecorder(rec),
		rec:   rec,
		start: RungDP,
		limitsFor: func(r Rung) guard.Limits {
			if r == RungDP {
				return tripping
			}
			return generous
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.rung != RungGreedy {
		t.Fatalf("answered at %v, want greedy", out.rung)
	}
	if len(out.trips) != 1 || out.trips[0].rung != RungDP {
		t.Fatalf("trips = %+v, want exactly the dp trip", out.trips)
	}
}

// TestParseRung round-trips every rung name and rejects junk.
func TestParseRung(t *testing.T) {
	for r := RungExhaustive; r < rungCount; r++ {
		got, err := ParseRung(r.String())
		if err != nil || got != r {
			t.Errorf("round trip %v: %v %v", r, got, err)
		}
	}
	if _, err := ParseRung("quantum"); err == nil {
		t.Error("unknown rung accepted")
	}
}
