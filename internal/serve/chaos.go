package serve

import (
	"context"
	"sync/atomic"
	"time"

	"multijoin/internal/guard"
	"multijoin/internal/obs"
)

// Deterministic fault injection. Chaos here is scheduled, not random:
// every Nth admitted request is faulted / slowed / cancelled, counted by
// an atomic sequence number. Determinism matters because the chaos suite
// asserts exact shapes ("every faulted request is answered by a lower
// rung or a typed error"), and a seeded-random schedule would make the
// failing case unreproducible from a CI log. The injected fault reuses
// guard.ErrFaultInjected via Limits.FaultStep, so the chaos path and the
// production budget-trip path are one code path.

// ChaosConfig schedules deterministic failures across requests. The
// zero value injects nothing.
type ChaosConfig struct {
	// FaultEvery injects guard.ErrFaultInjected into every Nth request
	// (at join step FaultStep of each rung attempt); 0 disables.
	FaultEvery int64
	// FaultStep is the join step that fails on a faulted request;
	// values < 1 mean step 1 (the first join).
	FaultStep int64
	// SlowEvery delays every Nth request by SlowBy while it holds its
	// concurrency slot — the knob that makes admission queues fill and
	// shedding observable; 0 disables.
	SlowEvery int64
	// SlowBy is the injected delay for slowed requests.
	SlowBy time.Duration
	// CancelEvery cancels every Nth request's context CancelAfter into
	// its execution; 0 disables.
	CancelEvery int64
	// CancelAfter is how far into a cancelled request the cancellation
	// fires.
	CancelAfter time.Duration
}

// Enabled reports whether any injection is configured.
func (c ChaosConfig) Enabled() bool {
	return c.FaultEvery > 0 || c.SlowEvery > 0 || c.CancelEvery > 0
}

// chaos applies a ChaosConfig to the request stream.
type chaos struct {
	cfg ChaosConfig
	seq atomic.Int64

	cFault  *obs.Counter
	cSlow   *obs.Counter
	cCancel *obs.Counter
}

func newChaos(cfg ChaosConfig, rec *obs.Recorder) *chaos {
	return &chaos{
		cfg:     cfg,
		cFault:  rec.Counter(obs.MetricServeChaosFault),
		cSlow:   rec.Counter(obs.MetricServeChaosSlow),
		cCancel: rec.Counter(obs.MetricServeChaosCancel),
	}
}

// chaosPlan is the injection schedule for one request.
type chaosPlan struct {
	fault  bool
	slow   bool
	cancel bool
}

// next assigns the next request its injection plan. Sequence numbers
// are 1-based so a config of FaultEvery=N faults requests N, 2N, … and
// the zero config faults nothing.
func (c *chaos) next() chaosPlan {
	if c == nil || !c.cfg.Enabled() {
		return chaosPlan{}
	}
	seq := c.seq.Add(1)
	p := chaosPlan{
		fault:  c.cfg.FaultEvery > 0 && seq%c.cfg.FaultEvery == 0,
		slow:   c.cfg.SlowEvery > 0 && seq%c.cfg.SlowEvery == 0,
		cancel: c.cfg.CancelEvery > 0 && seq%c.cfg.CancelEvery == 0,
	}
	if p.fault {
		c.cFault.Inc()
	}
	if p.slow {
		c.cSlow.Inc()
	}
	if p.cancel {
		c.cCancel.Inc()
	}
	return p
}

// applyLimits stamps the injected fault into a rung attempt's budgets.
func (c *chaos) applyLimits(p chaosPlan, lim guard.Limits) guard.Limits {
	if !p.fault {
		return lim
	}
	step := c.cfg.FaultStep
	if step < 1 {
		step = 1
	}
	lim.FaultStep = step
	lim.FaultErr = guard.ErrFaultInjected
	return lim
}

// slowDelay reports how long a slowed request must stall (while holding
// its slot, which is the point).
func (c *chaos) slowDelay(p chaosPlan) time.Duration {
	if !p.slow || c.cfg.SlowBy <= 0 {
		return 0
	}
	return c.cfg.SlowBy
}

// armCancel schedules the mid-execution cancellation for a cancelled
// request, returning the possibly-wrapped context and a stop function
// the caller must defer (it releases the timer on normal completion).
func (c *chaos) armCancel(ctx context.Context, p chaosPlan) (context.Context, func()) {
	if !p.cancel || c.cfg.CancelAfter <= 0 {
		return ctx, func() {}
	}
	wrapped, cancel := context.WithCancel(ctx)
	timer := time.AfterFunc(c.cfg.CancelAfter, cancel)
	return wrapped, func() {
		timer.Stop()
		cancel()
	}
}
