package serve

import (
	"container/list"
	"sync"

	"multijoin/internal/core"
	"multijoin/internal/obs"
	"multijoin/internal/strategy"
)

// The plan cache. Optimization is the expensive half of a request — the
// DP examines up to 2^n states — while the *outcome* is a small tree
// over relation indexes. The cache keys that tree by core.Fingerprint
// (hypergraph shape + statistics digest), so a repeat of a query against
// unchanged data skips the DP entirely: the acceptance criterion is that
// a cache hit leaves `dp.states` flat. Any change to the data moves the
// stats digest and misses naturally — there is no explicit invalidation
// protocol to get wrong.

// defaultPlanCacheCap bounds the cache when Config leaves it zero.
const defaultPlanCacheCap = 256

// cachedPlan is one cache entry: the plan tree plus how it was obtained,
// so a hit can report the original rung and cost honestly.
type cachedPlan struct {
	strategy  *strategy.Node
	rung      Rung
	cost      int64
	estimated bool
}

// planCache is a concurrency-safe LRU from fingerprint to plan.
type planCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recent; values are *planEntry
	entries map[core.Fingerprint]*list.Element

	cHit   *obs.Counter
	cMiss  *obs.Counter
	cEvict *obs.Counter
	gSize  *obs.Gauge
}

type planEntry struct {
	key  core.Fingerprint
	plan cachedPlan
}

func newPlanCache(capacity int, rec *obs.Recorder) *planCache {
	if capacity <= 0 {
		capacity = defaultPlanCacheCap
	}
	return &planCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[core.Fingerprint]*list.Element, capacity),
		cHit:    rec.Counter(obs.MetricServeCacheHit),
		cMiss:   rec.Counter(obs.MetricServeCacheMiss),
		cEvict:  rec.Counter(obs.MetricServeCacheEvict),
		gSize:   rec.Gauge(obs.MetricServeCacheSize),
	}
}

// get returns the cached plan for the fingerprint, refreshing its
// recency on a hit. acceptEstimated widens the lookup to entries filled
// from estimate-mode planning: exact requests must pass false (they owe
// the caller a τ-optimal plan, and an estimated entry is not one), so
// for them an estimated entry counts as a miss — without refreshing its
// recency, since the exact plan about to be computed will overwrite it.
func (pc *planCache) get(key core.Fingerprint, acceptEstimated bool) (cachedPlan, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.entries[key]
	if !ok {
		pc.cMiss.Inc()
		return cachedPlan{}, false
	}
	if el.Value.(*planEntry).plan.estimated && !acceptEstimated {
		pc.cMiss.Inc()
		return cachedPlan{}, false
	}
	pc.order.MoveToFront(el)
	pc.cHit.Inc()
	return el.Value.(*planEntry).plan, true
}

// put stores a plan under the fingerprint, evicting the least recently
// used entry past capacity. Storing again under a live key refreshes the
// plan in place (a concurrent request may have planned the same shape).
func (pc *planCache) put(key core.Fingerprint, plan cachedPlan) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.entries[key]; ok {
		el.Value.(*planEntry).plan = plan
		pc.order.MoveToFront(el)
		return
	}
	pc.entries[key] = pc.order.PushFront(&planEntry{key: key, plan: plan})
	for pc.order.Len() > pc.cap {
		oldest := pc.order.Back()
		pc.order.Remove(oldest)
		delete(pc.entries, oldest.Value.(*planEntry).key)
		pc.cEvict.Inc()
	}
	pc.gSize.Set(int64(pc.order.Len()))
}

// len reports the number of cached plans.
func (pc *planCache) len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.order.Len()
}
