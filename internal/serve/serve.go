// Package serve is the engine's multi-tenant service layer: an
// HTTP/JSON API that runs analyze/optimize/execute requests through the
// guard/obs stack with per-tenant admission control, load shedding, a
// degradation ladder, a fingerprint-keyed plan cache, and deterministic
// fault injection.
//
// The paper's results motivate every piece. Intermediate-result blow-up
// is workload-dependent (τ can be exponential in the worst case), so a
// served engine must treat resource exhaustion as a normal outcome: the
// guard turns it into typed errors, the ladder turns those into cheaper
// answers, and admission control turns sustained overload into fast
// 429s instead of collapse. The theorems say *which* cheaper searches
// are still optimal — the service is where that theory earns its keep.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"multijoin/internal/core"
	"multijoin/internal/database"
	"multijoin/internal/exitcode"
	"multijoin/internal/guard"
	"multijoin/internal/obs"
)

// Config configures a Server. The zero value serves the default tenant
// classes with a default-sized plan cache and no chaos.
type Config struct {
	// Tenants are the tenant classes; empty selects DefaultTenants.
	Tenants []TenantClass
	// PlanCacheCap bounds the plan cache; 0 selects the default (256).
	PlanCacheCap int
	// Chaos schedules deterministic fault injection; zero disables.
	Chaos ChaosConfig
	// Recorder receives the service metrics; nil records nothing.
	Recorder *obs.Recorder
	// FlightCap bounds the flight-recorder ring; 0 selects the
	// default (64).
	FlightCap int
	// SlowThreshold marks requests slower than this for the flight
	// recorder; 0 selects the default (1s).
	SlowThreshold time.Duration
}

// Server is the service: tenant classes, admission gates, the plan
// cache and the chaos schedule. Create with New, mount Handler.
type Server struct {
	tenants *tenantSet
	adm     *admission
	cache   *planCache
	chaos   *chaos
	rec     *obs.Recorder
	flight  *flightRecorder

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	cRequests *obs.Counter
	cOK       *obs.Counter
	cFailed   *obs.Counter
	tRequest  *obs.Timer
}

// New validates the configuration and builds a Server.
func New(cfg Config) (*Server, error) {
	ts, err := newTenantSet(cfg.Tenants)
	if err != nil {
		return nil, err
	}
	rec := cfg.Recorder
	return &Server{
		tenants:   ts,
		adm:       newAdmission(ts, rec),
		cache:     newPlanCache(cfg.PlanCacheCap, rec),
		chaos:     newChaos(cfg.Chaos, rec),
		rec:       rec,
		flight:    newFlightRecorder(cfg.FlightCap, cfg.SlowThreshold),
		cRequests: rec.Counter(obs.MetricServeRequests),
		cOK:       rec.Counter(obs.MetricServeOK),
		cFailed:   rec.Counter(obs.MetricServeFailed),
		tRequest:  rec.Timer(obs.MetricServeRequestWall),
	}, nil
}

// Recorder returns the server's recorder (nil when unconfigured).
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Tenants lists the configured tenant class names, sorted.
func (s *Server) Tenants() []string {
	out := make([]string, len(s.tenants.names))
	copy(out, s.tenants.names)
	return out
}

// CacheLen reports the number of cached plans.
func (s *Server) CacheLen() int { return s.cache.len() }

// BeginDrain flips the server into draining: /readyz answers 503 so
// load balancers stop routing here, and new API requests are refused
// with 503 while in-flight ones run to completion.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.rec.Counter(obs.MetricServeDrain).Inc()
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain blocks until every in-flight request completes or the context
// dies, whichever is first.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		defer func() {
			// The goroutineguard boundary: a panic here would otherwise
			// kill the process during shutdown.
			if err := guard.Recovered(recover()); err != nil {
				s.rec.Counter(obs.MetricServeDrainPanic).Inc()
			}
			close(done)
		}()
		s.inflight.Wait()
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler mounts the API:
//
//	GET  /healthz         liveness (always 200 while the process runs)
//	GET  /readyz          readiness (503 once draining)
//	GET  /metrics         Prometheus text exposition of the recorder
//	GET  /debug/requests  flight recorder: recent interesting traces
//	POST /v1/analyze      full four-space analysis with certificates
//	POST /v1/query        plan (and optionally execute) one join query
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/requests", s.handleFlight)
	mux.HandleFunc("/v1/analyze", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, true)
	})
	mux.HandleFunc("/v1/query", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, false)
	})
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "draining": true})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}

// handleMetrics serves the recorder snapshot as Prometheus text.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "serve: GET only", 0, nil)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.rec.WritePrometheus(w)
}

// handleFlight serves the flight recorder's retained request traces.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "serve: GET only", 0, nil)
		return
	}
	writeJSON(w, http.StatusOK, s.flight.snapshot())
}

// handleRun is both API endpoints: decode, admit, descend the ladder,
// answer. analyze selects the full four-space analysis; otherwise the
// request plans (and optionally executes) in the full space only. The
// whole run is traced against a request-scoped recorder; finishRequest
// owns the epilogue (headers, body, labeled series, flight record).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, analyze bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "serve: POST only", 0, nil)
		return
	}

	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "draining", "serve: draining", 1, nil)
		return
	}

	s.cRequests.Inc()
	start := time.Now()
	rt := s.startRequestTrace(r)
	resp, herr := s.serveRun(r, rt, analyze)
	dur := time.Since(start)
	s.tRequest.Observe(dur)
	s.finishRequest(w, rt, resp, herr, dur)
}

// serveRun runs one traced request end to end: decode, tenant lookup,
// admission, then the plan cache and ladder. It returns the response or
// a classified failure, never writing to the wire itself.
func (s *Server) serveRun(r *http.Request, rt *requestTrace, analyze bool) (*Response, *httpError) {
	req, db, err := DecodeRequest(r.Body)
	if err != nil {
		return nil, &httpError{status: http.StatusBadRequest, kind: "bad_request", msg: err.Error()}
	}
	class, ok := s.tenants.lookup(req.Tenant)
	if !ok {
		return nil, &httpError{status: http.StatusBadRequest, kind: "bad_request",
			msg: "serve: unknown tenant class " + strconv.Quote(req.Tenant)}
	}
	rt.class = class.Name
	rt.root.SetAttr("tenant", class.Name)
	s.rec.Counter(obs.MetricTenantRequests(class.Name)).Inc()

	plan := s.chaos.next()
	ctx, cancel := context.WithTimeout(r.Context(), class.Deadline)
	defer cancel()

	asp := rt.rec.StartSpan(obs.SpanAdmission)
	tk, err := s.adm.admit(ctx, class.Name)
	if err != nil {
		asp.Fail(err)
		asp.End()
		if errors.Is(err, ErrShed) {
			secs := int(s.adm.retryAfter(class.Name, time.Now()) / time.Second)
			return nil, &httpError{
				status:     http.StatusTooManyRequests,
				kind:       "shed",
				msg:        "serve: class " + class.Name + " saturated, request shed",
				retryAfter: secs,
			}
		}
		return nil, &httpError{status: http.StatusGatewayTimeout, kind: "deadline", msg: err.Error()}
	}
	asp.End()
	defer tk.release()

	// The request guard carries the deadline only; it exists so
	// concurrent sheds can compute Retry-After from in-flight deadlines.
	tk.setGuard(guard.New(ctx, guard.Limits{}))

	ctx, disarm := s.chaos.armCancel(ctx, plan)
	defer disarm()
	if d := s.chaos.slowDelay(plan); d > 0 {
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}

	return s.runRequest(ctx, rt, req, db, class, plan, analyze)
}

// finishRequest is the traced epilogue shared by success and failure:
// end the root span, stamp the trace headers, write the body, feed the
// per-tenant labeled series and latency histograms, offer the request
// to the flight recorder, and fold the request-scoped recorder into the
// server's so process totals keep reconciling.
func (s *Server) finishRequest(w http.ResponseWriter, rt *requestTrace,
	resp *Response, herr *httpError, dur time.Duration) {
	outcome, status := "ok", http.StatusOK
	if herr != nil {
		outcome, status = herr.kind, herr.status
		rt.root.Fail(errors.New(herr.msg))
	}
	rt.root.SetAttr("outcome", outcome)
	rt.root.End()

	w.Header().Set("Trace-Id", rt.traceID)
	w.Header().Set("Traceparent", rt.traceparentHeader())

	tenant := rt.class
	if tenant == "" {
		tenant = "unknown"
	}
	labels := obs.Labels{"tenant": tenant, "endpoint": rt.endpoint, "outcome": outcome}
	s.rec.LabeledCounter(obs.MetricServeRequestsBy, labels).Inc()
	s.rec.Histogram(obs.MetricServeRequestLatency, obs.DefaultLatencyBucketsNS, labels).
		Observe(dur.Nanoseconds())

	spans := rt.rec.Spans()
	entry := FlightEntry{
		TraceID:  rt.traceID,
		Endpoint: rt.endpoint,
		Tenant:   rt.class,
		Outcome:  outcome,
		Status:   status,
		DurNS:    dur.Nanoseconds(),
		Spans:    spans,
	}
	if herr != nil {
		s.cFailed.Inc()
		entry.Error = herr.msg
		if herr.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(herr.retryAfter))
		}
	} else {
		resp.Tenant = rt.class
		resp.Trace = &TraceInfo{
			TraceID:      rt.traceID,
			DroppedSpans: rt.rec.DroppedSpans(),
			Spans:        spans,
		}
		entry.Rung = resp.Rung
		entry.Degraded = resp.Degraded
		entry.Tuples = resp.Guard.Tuples.Spent
		entry.States = resp.Guard.States.Spent
		s.rec.Histogram(obs.MetricServeRequestTuples, obs.DefaultTupleBuckets, labels).
			Observe(resp.Guard.Tuples.Spent)
		s.cOK.Inc()
		s.rec.Counter(obs.MetricTenantOK(rt.class)).Inc()
	}
	// Record and fold before the body goes out: a client that has seen
	// the response must already find its trace at /debug/requests and
	// its spend in /metrics.
	if s.flight.interesting(entry) {
		s.flight.record(entry)
	}
	s.rec.Absorb(rt.rec)
	if herr != nil {
		writeError(w, herr.status, herr.kind, herr.msg, herr.retryAfter, herr.trips)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// httpError is a classified request failure.
type httpError struct {
	status int
	kind   string
	msg    string
	trips  []TripInfo
	// retryAfter is the Retry-After hint in whole seconds (shed only).
	retryAfter int
}

// runRequest executes one admitted request: plan cache, then the
// degradation ladder. The evaluator records against the request-scoped
// recorder, so the ladder's spans and the engine's phase events land in
// this request's trace.
func (s *Server) runRequest(ctx context.Context, rt *requestTrace, req *Request,
	db *database.Database, class TenantClass, plan chaosPlan, analyze bool) (*Response, *httpError) {
	fp := core.FingerprintDB(db)
	ev := database.NewEvaluator(db).WithRecorder(rt.rec)
	// Decode already validated the mode; analyze requests always plan
	// exactly, whatever the body says.
	planMode, _ := ParsePlanMode(req.PlanMode)
	if analyze {
		planMode = PlanExact
	}

	if !analyze && !req.NoCache {
		// Exact requests skip estimated entries — they owe the caller a
		// τ-optimal plan. Estimate-mode requests accept any entry: the
		// fingerprint digests exactly the statistics the catalog gathers,
		// and an exact plan is at least as good as an estimated one.
		if hit, ok := s.cache.get(fp, planMode != PlanExact); ok {
			if resp, ok := s.serveFromCache(ctx, rt, req, class, plan, ev, fp, hit); ok {
				return resp, nil
			}
			// Executing the cached plan tripped a budget — fall through
			// to the ladder, which owns degradation.
		}
	}

	limits := s.chaos.applyLimits(plan, class.Limits())
	out, err := runLadder(ladderRequest{
		ctx:       ctx,
		db:        db,
		ev:        ev,
		rec:       rt.rec,
		start:     class.StartRung,
		analyze:   analyze,
		planMode:  planMode,
		execute:   analyze || req.Execute,
		limitsFor: func(Rung) guard.Limits { return limits },
	})
	if err != nil {
		if guard.Tripped(err) {
			return nil, &httpError{
				status: http.StatusGatewayTimeout,
				kind:   "deadline",
				msg:    err.Error(),
				trips:  tripInfos(tripsOf(err)),
			}
		}
		if exitcode.IsInput(err) {
			return nil, &httpError{status: http.StatusBadRequest, kind: "bad_request", msg: err.Error()}
		}
		return nil, &httpError{status: http.StatusInternalServerError, kind: "internal", msg: err.Error()}
	}

	resp := s.buildResponse(db, ev, out, fp)
	// Cache fills: the executing rungs' exact plans — the yannakakis
	// rung's join-tree strategy included, since the tree is a pure
	// function of the fingerprinted scheme — plus estimate-mode plans:
	// core.Fingerprint digests the same statistics the catalog reads, so
	// an estimated plan is a pure function of the cache key.
	// Degradation-path estimate answers (exact mode) are NOT cached: they
	// exist because budgets tripped, not because planning finished.
	fill := out.rung == RungExhaustive || out.rung == RungDP ||
		out.rung == RungYannakakis ||
		(planMode != PlanExact && out.rung == RungEstimate)
	if !req.NoCache && fill {
		s.cache.put(fp, cachedPlan{
			strategy:  out.strategy,
			rung:      out.rung,
			cost:      out.cost,
			estimated: out.estimated,
		})
	}
	if analyze && out.analysis != nil {
		if raw, err := encodeAnalysis(db, out.analysis); err == nil {
			resp.Analysis = raw
		}
	}
	return resp, nil
}

// serveFromCache answers a query from the plan cache, executing the
// cached plan under a fresh guard when asked to. It reports !ok when
// execution trips, sending the caller to the ladder. The rung span
// mirrors the ladder's shape — a zero-cost cached "optimize" child,
// then "execute" carrying the full guard spend — so the trace invariant
// (answering rung's optimize+execute deltas == response guard spend)
// holds on cache hits too.
func (s *Server) serveFromCache(ctx context.Context, rt *requestTrace, req *Request,
	class TenantClass, plan chaosPlan, ev *database.Evaluator,
	fp core.Fingerprint, hit cachedPlan) (*Response, bool) {
	rsp := rt.rec.StartSpan(obs.SpanRung(hit.rung.String()))
	rsp.SetAttr("cached", "true")
	osp := rt.rec.StartSpan(obs.SpanOptimize)
	osp.SetAttr("cached", "true")
	osp.End()

	g := guard.New(ctx, s.chaos.applyLimits(plan, class.Limits()))
	ev.WithGuard(g)
	out := &ladderOutcome{
		rung:      hit.rung,
		strategy:  hit.strategy,
		cost:      hit.cost,
		estimated: hit.estimated,
	}
	esp := rt.rec.StartSpan(obs.SpanExecute)
	if req.Execute {
		err := (ladderRequest{ev: ev, execute: true}).maybeExecute(out)
		snap := g.Snapshot()
		esp.AddDelta(snap.Tuples.Spent, snap.States.Spent, snap.Steps.Spent)
		rsp.AddDelta(snap.Tuples.Spent, snap.States.Spent, snap.Steps.Spent)
		if err != nil {
			esp.Fail(err)
			esp.End()
			rsp.Fail(err)
			rsp.End()
			return nil, false
		}
	} else {
		esp.SetAttr("skipped", "true")
	}
	esp.End()
	out.snapshot = g.Snapshot()
	rsp.End()
	resp := s.buildResponse(ev.Database(), ev, out, fp)
	resp.CacheHit = true
	return resp, true
}

// buildResponse renders a ladder outcome.
func (s *Server) buildResponse(db *database.Database, ev *database.Evaluator,
	out *ladderOutcome, fp core.Fingerprint) *Response {
	resp := &Response{
		Rung:        out.rung.String(),
		Degraded:    out.degraded(),
		Trips:       tripInfos(out.trips),
		Fingerprint: fp.String(),
		Guard:       out.snapshot,
		Plan: PlanInfo{
			Expr:      core.EncodePlanExpr(out.strategy),
			Strategy:  out.strategy.Render(db),
			Cost:      out.cost,
			Estimated: out.estimated,
		},
	}
	if out.executed {
		if out.haveResult {
			// The yannakakis rung materialized R_D itself; reading the
			// size through the evaluator would redo the join as a binary
			// plan, defeating the fast path.
			size := out.resultSize
			resp.ResultSize = &size
		} else {
			// The final join is memoized by the execution that just ran, so
			// this lookup costs nothing and charges nothing.
			size := ev.Size(db.All())
			resp.ResultSize = &size
		}
	}
	return resp
}

// tripInfos renders ladder trips for the wire.
func tripInfos(trips []trip) []TripInfo {
	if len(trips) == 0 {
		return nil
	}
	out := make([]TripInfo, len(trips))
	for i, t := range trips {
		out[i] = TripInfo{Rung: t.rung.String(), Error: t.err.Error()}
	}
	return out
}

// tripsOf recovers the ladder's trip list from a total-failure error.
func tripsOf(err error) []trip {
	var le *ladderError
	if errors.As(err, &le) {
		return le.trips
	}
	return nil
}

// encodeAnalysis renders the analysis in the CLI's JSON shape.
func encodeAnalysis(db *database.Database, an *core.Analysis) (json.RawMessage, error) {
	var buf bytes.Buffer
	if err := core.EncodeAnalysisJSON(&buf, db, an); err != nil {
		return nil, err
	}
	return json.RawMessage(buf.Bytes()), nil
}

// writeJSON writes a JSON body with status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the standard error body.
func writeError(w http.ResponseWriter, status int, kind, msg string, retryAfter int, trips []TripInfo) {
	writeJSON(w, status, ErrorInfo{
		Error:             msg,
		Kind:              kind,
		RetryAfterSeconds: retryAfter,
		Trips:             trips,
	})
}
