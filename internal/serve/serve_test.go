package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"multijoin/internal/obs"
	"multijoin/internal/paperex"
)

// newTestServer builds a server with a recorder and generous default
// tenants unless overridden.
func newTestServer(t *testing.T, cfg Config) (*Server, HandlerDoer, *obs.Recorder) {
	t.Helper()
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewRecorder()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, HandlerDoer{Handler: srv.Handler()}, cfg.Recorder
}

// mustBody builds a request body for a paper example.
func mustBody(t *testing.T, tenant string, execute, noCache bool) []byte {
	t.Helper()
	body, err := BuildRequestBody(paperex.Example1(), tenant, execute, noCache)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// decode200 parses a 200 response, failing the test otherwise.
func decode200(t *testing.T, res *DoResult) *Response {
	t.Helper()
	if res.Status != http.StatusOK {
		t.Fatalf("status %d: %s", res.Status, res.Body)
	}
	var out Response
	if err := json.Unmarshal(res.Body, &out); err != nil {
		t.Fatalf("unparseable body: %v\n%s", err, res.Body)
	}
	return &out
}

func TestHealthAndReadiness(t *testing.T) {
	srv, doer, _ := newTestServer(t, Config{})
	res, err := doer.Do(context.Background(), http.MethodGet, "/healthz", nil)
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("healthz: %v status %d", err, res.Status)
	}
	res, _ = doer.Do(context.Background(), http.MethodGet, "/readyz", nil)
	if res.Status != http.StatusOK {
		t.Fatalf("readyz before drain: status %d", res.Status)
	}

	srv.BeginDrain()
	res, _ = doer.Do(context.Background(), http.MethodGet, "/readyz", nil)
	if res.Status != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", res.Status)
	}
	// API requests are refused while draining, with a Retry-After.
	res, _ = doer.Do(context.Background(), http.MethodPost, "/v1/query", mustBody(t, "standard", false, false))
	if res.Status != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", res.Status)
	}
	if res.RetryAfter == "" {
		t.Fatal("draining refusal missing Retry-After")
	}
	// healthz stays 200 — the process is alive, just not taking work.
	res, _ = doer.Do(context.Background(), http.MethodGet, "/healthz", nil)
	if res.Status != http.StatusOK {
		t.Fatalf("healthz during drain: status %d", res.Status)
	}
}

func TestQueryHappyPath(t *testing.T) {
	_, doer, _ := newTestServer(t, Config{})
	res, err := doer.Do(context.Background(), http.MethodPost, "/v1/query", mustBody(t, "standard", true, false))
	if err != nil {
		t.Fatal(err)
	}
	out := decode200(t, res)
	if out.Tenant != "standard" {
		t.Errorf("tenant = %q", out.Tenant)
	}
	if out.Rung != "dp" {
		t.Errorf("rung = %q, want dp (standard starts at the DP)", out.Rung)
	}
	if out.Degraded || len(out.Trips) != 0 {
		t.Errorf("unexpected degradation: %+v", out)
	}
	if out.Plan.Cost <= 0 || out.Plan.Estimated {
		t.Errorf("want a positive measured cost: %+v", out.Plan)
	}
	if out.ResultSize == nil {
		t.Error("executed query missing resultSize")
	}
	if out.Plan.Expr == "" || !strings.Contains(out.Plan.Strategy, "R") {
		t.Errorf("plan not rendered: %+v", out.Plan)
	}
}

func TestAnalyzeReturnsCertificates(t *testing.T) {
	_, doer, _ := newTestServer(t, Config{})
	res, err := doer.Do(context.Background(), http.MethodPost, "/v1/analyze", mustBody(t, "premium", false, false))
	if err != nil {
		t.Fatal(err)
	}
	out := decode200(t, res)
	if out.Rung != "dp" {
		t.Errorf("analyze rung = %q, want dp", out.Rung)
	}
	if len(out.Analysis) == 0 {
		t.Fatal("analyze response missing analysis section")
	}
	var an struct {
		Conditions []json.RawMessage `json:"conditions"`
		Optima     []struct {
			Space string `json:"space"`
			Tau   int    `json:"tau"`
		} `json:"optima"`
	}
	if err := json.Unmarshal(out.Analysis, &an); err != nil {
		t.Fatalf("analysis not in the CLI JSON shape: %v", err)
	}
	if len(an.Optima) != 4 || len(an.Conditions) == 0 {
		t.Errorf("analysis incomplete: %+v", an)
	}
}

func TestBadRequests(t *testing.T) {
	_, doer, _ := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		method, path string
		body         string
		wantStatus   int
	}{
		"get on api":     {http.MethodGet, "/v1/query", "", http.StatusMethodNotAllowed},
		"empty body":     {http.MethodPost, "/v1/query", "", http.StatusBadRequest},
		"not json":       {http.MethodPost, "/v1/query", "not json", http.StatusBadRequest},
		"unknown field":  {http.MethodPost, "/v1/query", `{"databose":{}}`, http.StatusBadRequest},
		"no database":    {http.MethodPost, "/v1/query", `{"tenant":"free"}`, http.StatusBadRequest},
		"empty database": {http.MethodPost, "/v1/query", `{"database":{"relations":[]}}`, http.StatusBadRequest},
		"unknown tenant": {http.MethodPost, "/v1/analyze", `{"tenant":"vip","database":{"relations":[{"name":"R","attrs":["A"],"rows":[]}]}}`, http.StatusBadRequest},
		"trailing data":  {http.MethodPost, "/v1/query", `{"database":{"relations":[{"name":"R","attrs":["A"],"rows":[]}]}} extra`, http.StatusBadRequest},
		"malformed rows": {http.MethodPost, "/v1/query", `{"database":{"relations":[{"name":"R","attrs":["A"],"rows":[["a","b"]]}]}}`, http.StatusBadRequest},
	} {
		res, err := doer.Do(context.Background(), tc.method, tc.path, []byte(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Status != tc.wantStatus {
			t.Errorf("%s: status %d, want %d\n%s", name, res.Status, tc.wantStatus, res.Body)
		}
		var ei ErrorInfo
		if err := json.Unmarshal(res.Body, &ei); err != nil || ei.Error == "" || ei.Kind == "" {
			t.Errorf("%s: error body not typed: %v %s", name, err, res.Body)
		}
	}
}

func TestPlanCacheHitKeepsDPFlat(t *testing.T) {
	srv, doer, rec := newTestServer(t, Config{})
	body := mustBody(t, "standard", false, false)

	res, _ := doer.Do(context.Background(), http.MethodPost, "/v1/query", body)
	first := decode200(t, res)
	if first.CacheHit {
		t.Fatal("first request cannot be a cache hit")
	}
	if srv.CacheLen() != 1 {
		t.Fatalf("cache len = %d after first dp answer", srv.CacheLen())
	}
	statesAfterFirst := rec.Counter("dp.states").Value()
	if statesAfterFirst == 0 {
		t.Fatal("first request examined no DP states — metric wiring broken")
	}

	res, _ = doer.Do(context.Background(), http.MethodPost, "/v1/query", body)
	second := decode200(t, res)
	if !second.CacheHit {
		t.Fatalf("repeat query missed the cache: %+v", second)
	}
	if second.Rung != first.Rung || second.Plan.Expr != first.Plan.Expr {
		t.Errorf("cache hit changed the answer: %+v vs %+v", second, first)
	}
	if got := rec.Counter("dp.states").Value(); got != statesAfterFirst {
		t.Errorf("cache hit ran the DP: dp.states %d → %d", statesAfterFirst, got)
	}
	if rec.Counter("serve.cache.hit").Value() != 1 {
		t.Errorf("serve.cache.hit = %d, want 1", rec.Counter("serve.cache.hit").Value())
	}
	if first.Fingerprint != second.Fingerprint || first.Fingerprint == "" {
		t.Errorf("fingerprints disagree: %q vs %q", first.Fingerprint, second.Fingerprint)
	}
}

func TestNoCacheBypassesThePlanCache(t *testing.T) {
	srv, doer, rec := newTestServer(t, Config{})
	body := mustBody(t, "standard", false, true)
	for i := 0; i < 2; i++ {
		res, _ := doer.Do(context.Background(), http.MethodPost, "/v1/query", body)
		if out := decode200(t, res); out.CacheHit {
			t.Fatal("noCache request served from cache")
		}
	}
	if srv.CacheLen() != 0 {
		t.Errorf("noCache filled the cache: len %d", srv.CacheLen())
	}
	if rec.Counter("serve.cache.hit").Value() != 0 {
		t.Error("noCache hit the cache")
	}
}

func TestCacheInvalidatedByDataChange(t *testing.T) {
	_, doer, _ := newTestServer(t, Config{})
	res, _ := doer.Do(context.Background(), http.MethodPost, "/v1/query", mustBody(t, "standard", false, false))
	first := decode200(t, res)

	// A different database (another example) must miss: its fingerprint
	// differs in both shape and stats.
	body2, err := BuildRequestBody(paperex.Example5(), "standard", false, false)
	if err != nil {
		t.Fatal(err)
	}
	res, _ = doer.Do(context.Background(), http.MethodPost, "/v1/query", body2)
	second := decode200(t, res)
	if second.CacheHit {
		t.Fatal("different database hit the first database's plan")
	}
	if second.Fingerprint == first.Fingerprint {
		t.Fatal("different databases share a fingerprint")
	}
}

func TestDeadlineRequestGetsTypedError(t *testing.T) {
	// A 1ns deadline dies before admission completes; the response must
	// be a typed 504, not a hang or a 500.
	_, doer, _ := newTestServer(t, Config{Tenants: []TenantClass{{
		Name:          "instant",
		Deadline:      time.Nanosecond,
		MaxConcurrent: 1,
		MaxQueue:      1,
		StartRung:     RungDP,
	}}})
	res, err := doer.Do(context.Background(), http.MethodPost, "/v1/query", mustBody(t, "instant", false, false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504\n%s", res.Status, res.Body)
	}
	var ei ErrorInfo
	if err := json.Unmarshal(res.Body, &ei); err != nil || ei.Kind != "deadline" {
		t.Fatalf("want kind=deadline: %v %s", err, res.Body)
	}
}

func TestDefaultTenantIsStandard(t *testing.T) {
	_, doer, _ := newTestServer(t, Config{})
	body, err := BuildRequestBody(paperex.Example1(), "", false, false)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := doer.Do(context.Background(), http.MethodPost, "/v1/query", body)
	if out := decode200(t, res); out.Tenant != "standard" {
		t.Errorf("empty tenant resolved to %q, want standard", out.Tenant)
	}
}

func TestTenantConfigValidation(t *testing.T) {
	for name, classes := range map[string][]TenantClass{
		"empty name":   {{Deadline: time.Second, MaxConcurrent: 1}},
		"no deadline":  {{Name: "x", MaxConcurrent: 1}},
		"no slots":     {{Name: "x", Deadline: time.Second}},
		"bad rung":     {{Name: "x", Deadline: time.Second, MaxConcurrent: 1, StartRung: Rung(99)}},
		"duplicate":    {{Name: "x", Deadline: time.Second, MaxConcurrent: 1}, {Name: "x", Deadline: time.Second, MaxConcurrent: 1}},
		"negative que": {{Name: "x", Deadline: time.Second, MaxConcurrent: 1, MaxQueue: -1}},
	} {
		if _, err := New(Config{Tenants: classes}); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
}
