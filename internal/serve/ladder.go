package serve

import (
	"context"
	"fmt"

	"multijoin/internal/core"
	"multijoin/internal/database"
	"multijoin/internal/estimate"
	"multijoin/internal/guard"
	"multijoin/internal/obs"
	"multijoin/internal/optimizer"
	"multijoin/internal/strategy"
)

// The degradation ladder. The paper's strategy spaces are searched by
// algorithms of strictly decreasing cost and decreasing guarantees:
//
//	exhaustive  (2n−3)!! enumeration — certain optimum, exponential
//	dp          subset dynamic program — τ-optimum, 2^n states
//	greedy      O(n³) heuristic probe — no guarantee, executes joins
//	estimate    statistics-only plan — never touches the data
//
// A budget trip at rung k is answered by rung k+1 under a fresh guard
// (the request deadline keeps running — the ladder degrades within the
// request's wall-clock contract, it does not extend it). The bottom
// rung plans purely from statistics, so every admitted request that
// survives to its deadline gets *an* answer; the response records which
// rung produced it and what tripped on the way down.

// Rung identifies a ladder level, ordered best-first.
type Rung int

const (
	// RungExhaustive enumerates every strategy in the space.
	RungExhaustive Rung = iota
	// RungDP runs the memoized subset dynamic program.
	RungDP
	// RungGreedy runs the greedy heuristic over the full space.
	RungGreedy
	// RungEstimate plans from statistics without executing any join.
	RungEstimate
	rungCount
)

// String names the rung as it appears in responses and metrics.
func (r Rung) String() string {
	switch r {
	case RungExhaustive:
		return "exhaustive"
	case RungDP:
		return "dp"
	case RungGreedy:
		return "greedy"
	case RungEstimate:
		return "estimate"
	}
	return fmt.Sprintf("Rung(%d)", int(r))
}

// ParseRung resolves a rung name from a request body.
func ParseRung(name string) (Rung, error) {
	for r := RungExhaustive; r < rungCount; r++ {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown rung %q (want exhaustive|dp|greedy|estimate)", name)
}

// exhaustiveMaxRelations bounds the enumeration rung the same way the
// CLI's -optima does: past 8 relations (2n−3)!! is out of reach and the
// ladder starts at the DP instead.
const exhaustiveMaxRelations = 8

// estimateDPMaxRelations bounds the estimate rung's own subset DP; past
// it the rung falls back to the left-deep order, which costs O(n).
const estimateDPMaxRelations = 12

// trip records one rung's governance failure on the way down.
type trip struct {
	rung Rung
	err  error
}

// ladderOutcome is a successful ladder descent.
type ladderOutcome struct {
	rung      Rung
	strategy  *strategy.Node
	cost      int64
	estimated bool
	trips     []trip
	// snapshot is the answering rung's final guard ledger.
	snapshot guard.Snapshot
	// analysis is the full four-space analysis, present only when the
	// request asked for analyze mode and the DP rung answered.
	analysis *core.Analysis
}

// ladderError is a descent in which every rung failed. It unwraps to
// the bottom rung's error, so guard.Tripped classifies it exactly as it
// would the underlying trip, while keeping the full descent history for
// the response body.
type ladderError struct {
	trips []trip
}

// Error names the last rung and its error.
func (e *ladderError) Error() string {
	last := e.trips[len(e.trips)-1]
	return fmt.Sprintf("serve: all rungs failed, last (%s): %v", last.rung, last.err)
}

// Unwrap exposes the bottom rung's error for errors.Is/As.
func (e *ladderError) Unwrap() error { return e.trips[len(e.trips)-1].err }

// degraded reports whether the answer came from below the start rung.
func (o *ladderOutcome) degraded() bool { return len(o.trips) > 0 }

// ladderRequest carries everything one descent needs.
type ladderRequest struct {
	ctx     context.Context
	db      *database.Database
	ev      *database.Evaluator
	rec     *obs.Recorder
	start   Rung
	analyze bool
	// limitsFor derives the guard budgets for one rung attempt; tests
	// inject trip-at-rung-k schedules through it.
	limitsFor func(Rung) guard.Limits
	// execute materializes the chosen plan's steps under the rung's
	// guard (query mode with execution requested). The estimate rung
	// never executes.
	execute bool
}

// runLadder descends from req.start until a rung answers. The error
// return is non-nil only when every rung failed — either the deadline
// died (a typed governance error) or a genuine internal error surfaced,
// which is never absorbed by degradation.
func runLadder(req ladderRequest) (*ladderOutcome, error) {
	out := &ladderOutcome{}
	start := req.start
	if start == RungExhaustive && req.db.Len() > exhaustiveMaxRelations {
		start = RungDP
	}
	if req.analyze && start < RungDP {
		// The four-space analysis with certificates IS the DP rung;
		// exhaustive enumeration adds nothing to an analyze request.
		start = RungDP
	}
	for rung := start; rung < rungCount; rung++ {
		rsp := req.rec.StartSpan(obs.SpanRung(rung.String()))
		g := guard.New(req.ctx, req.limitsFor(rung))
		req.ev.WithGuard(g)
		err := attemptRung(req, rung, g, out)
		snap := g.Snapshot()
		rsp.AddDelta(snap.Tuples.Spent, snap.States.Spent, snap.Steps.Spent)
		if err == nil {
			rsp.End()
			out.rung = rung
			out.snapshot = snap
			if out.degraded() {
				req.rec.Counter(obs.MetricServeDegraded).Inc()
				req.rec.Counter(obs.MetricDegradedTo(rung.String())).Inc()
			}
			return out, nil
		}
		rsp.Fail(err)
		rsp.End()
		if !guard.Tripped(err) {
			return nil, err
		}
		req.rec.Counter(obs.MetricServeTrips).Inc()
		out.trips = append(out.trips, trip{rung: rung, err: err})
	}
	// Even the estimate rung failed: the deadline is dead (its only
	// governed work is reading base-relation statistics). Surface the
	// whole descent as one typed error.
	return nil, &ladderError{trips: out.trips}
}

// attemptRung runs one rung under its fresh guard, wrapping the
// planning work in an "optimize" span and any materialization in an
// "execute" span. The guard-ledger readings at the span boundaries are
// the spans' τ/state attribution, so the answering rung's optimize and
// execute deltas sum exactly to the response's guard spend.
func attemptRung(req ladderRequest, rung Rung, g *guard.Guard, out *ladderOutcome) error {
	osp := req.rec.StartSpan(obs.SpanOptimize)
	err := planRung(req, rung, out)
	planned := g.Snapshot()
	osp.AddDelta(planned.Tuples.Spent, planned.States.Spent, planned.Steps.Spent)
	if err != nil {
		osp.Fail(err)
		osp.End()
		return err
	}
	osp.End()

	esp := req.rec.StartSpan(obs.SpanExecute)
	if !req.execute || rung == RungEstimate {
		// The estimate rung never executes; other rungs skip execution
		// when the request did not ask for it. The span still appears,
		// with zero deltas, so every answer carries the full taxonomy.
		esp.SetAttr("skipped", "true")
		esp.End()
		return nil
	}
	err = req.maybeExecute(out)
	final := g.Snapshot()
	esp.AddDelta(final.Tuples.Spent-planned.Tuples.Spent,
		final.States.Spent-planned.States.Spent,
		final.Steps.Spent-planned.Steps.Spent)
	if err != nil {
		esp.Fail(err)
	}
	esp.End()
	return err
}

// planRung runs one rung's planning work, filling
// out.strategy/cost/estimated (and out.analysis for analyze mode) on
// success. Execution is the caller's concern.
func planRung(req ladderRequest, rung Rung, out *ladderOutcome) error {
	switch rung {
	case RungExhaustive:
		res, err := optimizer.ExhaustiveGuarded(req.ev)
		if err != nil {
			return err
		}
		out.strategy, out.cost, out.estimated = res.Strategy, int64(res.Cost), false
		return nil

	case RungDP:
		if req.analyze {
			an, err := core.AnalyzeEvaluator(req.ev)
			if err != nil {
				return err
			}
			if !an.Complete() {
				// A truncated analysis is a trip for ladder purposes —
				// the greedy rung still owes the caller a plan — but the
				// partial profile is kept for the response.
				out.analysis = an
				return an.Truncated[0].Err
			}
			out.analysis = an
			res, ok := an.Result(optimizer.SpaceAll)
			if !ok {
				return fmt.Errorf("serve: analysis complete but missing the full-space optimum")
			}
			out.strategy, out.cost, out.estimated = res.Strategy, int64(res.Cost), false
			return nil
		}
		res, err := optimizer.Optimize(req.ev, optimizer.SpaceAll)
		if err != nil {
			return err
		}
		out.strategy, out.cost, out.estimated = res.Strategy, int64(res.Cost), false
		return nil

	case RungGreedy:
		res, err := optimizer.GreedyGuarded(req.ev)
		if err != nil {
			return err
		}
		out.strategy, out.cost, out.estimated = res.Strategy, int64(res.Cost), false
		return nil

	case RungEstimate:
		return estimateRung(req, out)
	}
	return fmt.Errorf("serve: unknown rung %d", int(rung))
}

// estimateRung plans from statistics only. It still honors the request
// context — gathering the catalog touches base relations — but executes
// nothing, so it answers even when every execution budget is spent.
func estimateRung(req ladderRequest, out *ladderOutcome) (err error) {
	defer guard.Protect(&err)
	if cerr := req.ctx.Err(); cerr != nil {
		return &guard.CancelError{Phase: "estimate", Cause: cerr}
	}
	cat := estimate.NewCatalog(req.db)
	var plan *strategy.Node
	if req.db.Len() <= estimateDPMaxRelations {
		plan = cat.Optimize()
	} else {
		order := make([]int, req.db.Len())
		for i := range order {
			order[i] = i
		}
		plan = strategy.LeftDeep(order...)
	}
	out.strategy, out.cost, out.estimated = plan, int64(cat.Cost(plan)), true
	return nil
}

// maybeExecute materializes the plan's steps (charging the rung's
// guard) when the request asked for execution; the trap converts a trip
// during execution into this rung's failure, sending the ladder down.
func (req ladderRequest) maybeExecute(out *ladderOutcome) (err error) {
	if !req.execute {
		return nil
	}
	defer guard.Trap(&err)
	out.cost = int64(out.strategy.Cost(req.ev))
	return nil
}
