package serve

import (
	"context"
	"fmt"

	"multijoin/internal/core"
	"multijoin/internal/database"
	"multijoin/internal/estimate"
	"multijoin/internal/guard"
	"multijoin/internal/obs"
	"multijoin/internal/optimizer"
	"multijoin/internal/semijoin"
	"multijoin/internal/strategy"
)

// The degradation ladder. The paper's strategy spaces are searched by
// algorithms of strictly decreasing cost and decreasing guarantees:
//
//	exhaustive  (2n−3)!! enumeration — certain optimum, exponential
//	dp          subset dynamic program — τ-optimum, 2^n states
//	yannakakis  semijoin-reduced join tree — acyclic schemes only,
//	            intermediates bounded by the output, polynomial
//	greedy      O(n³) heuristic probe — no guarantee, executes joins
//	estimate    statistics-only plan — never touches the data
//
// A budget trip at rung k is answered by rung k+1 under a fresh guard
// (the request deadline keeps running — the ladder degrades within the
// request's wall-clock contract, it does not extend it). The bottom
// rung plans purely from statistics, so every admitted request that
// survives to its deadline gets *an* answer; the response records which
// rung produced it and what tripped on the way down.

// Rung identifies a ladder level, ordered best-first.
type Rung int

const (
	// RungExhaustive enumerates every strategy in the space.
	RungExhaustive Rung = iota
	// RungDP runs the memoized subset dynamic program.
	RungDP
	// RungYannakakis runs the governed semijoin reduction + join-tree
	// join. It applies only to component-wise α-acyclic schemes and is
	// skipped otherwise; where it applies, its intermediates are bounded
	// by the output — often far below what the greedy probe would
	// materialize after the DP has tripped.
	RungYannakakis
	// RungGreedy runs the greedy heuristic over the full space.
	RungGreedy
	// RungEstimate plans from statistics without executing any join.
	RungEstimate
	rungCount
)

// String names the rung as it appears in responses and metrics.
func (r Rung) String() string {
	switch r {
	case RungExhaustive:
		return "exhaustive"
	case RungDP:
		return "dp"
	case RungYannakakis:
		return "yannakakis"
	case RungGreedy:
		return "greedy"
	case RungEstimate:
		return "estimate"
	}
	return fmt.Sprintf("Rung(%d)", int(r))
}

// ParseRung resolves a rung name from a request body.
func ParseRung(name string) (Rung, error) {
	for r := RungExhaustive; r < rungCount; r++ {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown rung %q (want exhaustive|dp|yannakakis|greedy|estimate)", name)
}

// exhaustiveMaxRelations bounds the enumeration rung the same way the
// CLI's -optima does: past 8 relations (2n−3)!! is out of reach and the
// ladder starts at the DP instead.
const exhaustiveMaxRelations = 8

// estimateDPMaxRelations bounds the estimate rung's own subset DP; past
// it the rung falls back to the left-deep order, which costs O(n).
const estimateDPMaxRelations = 12

// trip records one rung's governance failure on the way down.
type trip struct {
	rung Rung
	err  error
}

// ladderOutcome is a successful ladder descent.
type ladderOutcome struct {
	rung      Rung
	strategy  *strategy.Node
	cost      int64
	estimated bool
	// executed is set once the plan was materialized — by maybeExecute,
	// or by the yannakakis rung whose planning pass IS the execution —
	// so the response knows a true result size exists even for
	// estimate-mode plans (estimated provenance, measured cost).
	executed bool
	// resultSize carries the result size when a rung produced R_D during
	// planning (the yannakakis rung); it saves the response builder from
	// re-materializing the full join through the evaluator. Valid only
	// when haveResult is set.
	resultSize int
	haveResult bool
	trips      []trip
	// snapshot is the answering rung's final guard ledger.
	snapshot guard.Snapshot
	// analysis is the full four-space analysis, present only when the
	// request asked for analyze mode and the DP rung answered.
	analysis *core.Analysis
}

// ladderError is a descent in which every rung failed. It unwraps to
// the bottom rung's error, so guard.Tripped classifies it exactly as it
// would the underlying trip, while keeping the full descent history for
// the response body.
type ladderError struct {
	trips []trip
}

// Error names the last rung and its error.
func (e *ladderError) Error() string {
	last := e.trips[len(e.trips)-1]
	return fmt.Sprintf("serve: all rungs failed, last (%s): %v", last.rung, last.err)
}

// Unwrap exposes the bottom rung's error for errors.Is/As.
func (e *ladderError) Unwrap() error { return e.trips[len(e.trips)-1].err }

// degraded reports whether the answer came from below the start rung.
func (o *ladderOutcome) degraded() bool { return len(o.trips) > 0 }

// ladderRequest carries everything one descent needs.
type ladderRequest struct {
	ctx     context.Context
	db      *database.Database
	ev      *database.Evaluator
	rec     *obs.Recorder
	start   Rung
	analyze bool
	// planMode selects exact or estimate-driven planning. PlanExact
	// keeps the estimate rung a never-executing last resort; the
	// estimate modes start the descent directly at that rung and let it
	// execute the chosen plan when execution was requested.
	planMode PlanMode
	// limitsFor derives the guard budgets for one rung attempt; tests
	// inject trip-at-rung-k schedules through it.
	limitsFor func(Rung) guard.Limits
	// execute materializes the chosen plan's steps under the rung's
	// guard (query mode with execution requested). The estimate rung
	// never executes.
	execute bool
}

// runLadder descends from req.start until a rung answers. The error
// return is non-nil only when every rung failed — either the deadline
// died (a typed governance error) or a genuine internal error surfaced,
// which is never absorbed by degradation.
func runLadder(req ladderRequest) (*ladderOutcome, error) {
	out := &ladderOutcome{}
	start := req.start
	// The yannakakis rung exists only for component-wise α-acyclic
	// schemes; the check is scheme-only and costs a GYO pass.
	acyclic := req.db.Graph().AcyclicComponents()
	if start == RungExhaustive && req.db.Len() > exhaustiveMaxRelations {
		start = RungDP
	}
	if req.analyze && start < RungDP {
		// The four-space analysis with certificates IS the DP rung;
		// exhaustive enumeration adds nothing to an analyze request.
		start = RungDP
	}
	if req.planMode != PlanExact && !req.analyze {
		// Estimate-driven planning is the fast path, not a degradation:
		// skip every executing rung and plan from statistics directly.
		start = RungEstimate
	}
	for rung := start; rung < rungCount; rung++ {
		if rung == RungYannakakis && !acyclic {
			continue
		}
		rsp := req.rec.StartSpan(obs.SpanRung(rung.String()))
		g := guard.New(req.ctx, req.limitsFor(rung))
		req.ev.WithGuard(g)
		err := attemptRung(req, rung, g, out)
		snap := g.Snapshot()
		rsp.AddDelta(snap.Tuples.Spent, snap.States.Spent, snap.Steps.Spent)
		if err == nil {
			rsp.End()
			out.rung = rung
			out.snapshot = snap
			if out.degraded() {
				req.rec.Counter(obs.MetricServeDegraded).Inc()
				req.rec.Counter(obs.MetricDegradedTo(rung.String())).Inc()
			}
			return out, nil
		}
		rsp.Fail(err)
		rsp.End()
		if !guard.Tripped(err) {
			return nil, err
		}
		req.rec.Counter(obs.MetricServeTrips).Inc()
		out.trips = append(out.trips, trip{rung: rung, err: err})
	}
	// Even the estimate rung failed: the deadline is dead (its only
	// governed work is reading base-relation statistics). Surface the
	// whole descent as one typed error.
	return nil, &ladderError{trips: out.trips}
}

// attemptRung runs one rung under its fresh guard, wrapping the
// planning work in an "optimize" span and any materialization in an
// "execute" span. The guard-ledger readings at the span boundaries are
// the spans' τ/state attribution, so the answering rung's optimize and
// execute deltas sum exactly to the response's guard spend.
func attemptRung(req ladderRequest, rung Rung, g *guard.Guard, out *ladderOutcome) error {
	osp := req.rec.StartSpan(obs.SpanOptimize)
	err := planRung(req, rung, g, out)
	planned := g.Snapshot()
	osp.AddDelta(planned.Tuples.Spent, planned.States.Spent, planned.Steps.Spent)
	if err != nil {
		osp.Fail(err)
		osp.End()
		return err
	}
	osp.End()

	esp := req.rec.StartSpan(obs.SpanExecute)
	if !req.execute || out.executed || (rung == RungEstimate && req.planMode == PlanExact) {
		// On the degradation path the estimate rung never executes (it
		// answers precisely because execution budgets are spent); in an
		// estimate planning mode the chosen plan does execute when asked,
		// reporting its true τ. The yannakakis rung executes during
		// planning (the reduced join IS the method), so its execute span
		// carries no separate work. Other rungs skip execution when the
		// request did not ask for it. The span still appears, with zero
		// deltas, so every answer carries the full taxonomy.
		esp.SetAttr("skipped", "true")
		esp.End()
		return nil
	}
	err = req.maybeExecute(out)
	final := g.Snapshot()
	esp.AddDelta(final.Tuples.Spent-planned.Tuples.Spent,
		final.States.Spent-planned.States.Spent,
		final.Steps.Spent-planned.Steps.Spent)
	if err != nil {
		esp.Fail(err)
	}
	esp.End()
	return err
}

// planRung runs one rung's planning work, filling
// out.strategy/cost/estimated (and out.analysis for analyze mode) on
// success. Execution is the caller's concern. g is the rung's fresh
// guard — the executing rungs charge it through the evaluator, the
// estimate rung charges its model DP states directly.
func planRung(req ladderRequest, rung Rung, g *guard.Guard, out *ladderOutcome) error {
	switch rung {
	case RungExhaustive:
		res, err := optimizer.ExhaustiveGuarded(req.ev)
		if err != nil {
			return err
		}
		out.strategy, out.cost, out.estimated = res.Strategy, int64(res.Cost), false
		return nil

	case RungDP:
		if req.analyze {
			an, err := core.AnalyzeEvaluator(req.ev)
			if err != nil {
				return err
			}
			if !an.Complete() {
				// A truncated analysis is a trip for ladder purposes —
				// the greedy rung still owes the caller a plan — but the
				// partial profile is kept for the response.
				out.analysis = an
				return an.Truncated[0].Err
			}
			out.analysis = an
			res, ok := an.Result(optimizer.SpaceAll)
			if !ok {
				return fmt.Errorf("serve: analysis complete but missing the full-space optimum")
			}
			out.strategy, out.cost, out.estimated = res.Strategy, int64(res.Cost), false
			return nil
		}
		res, err := optimizer.Optimize(req.ev, optimizer.SpaceAll)
		if err != nil {
			return err
		}
		out.strategy, out.cost, out.estimated = res.Strategy, int64(res.Cost), false
		return nil

	case RungYannakakis:
		return yannakakisRung(req, g, out)

	case RungGreedy:
		res, err := optimizer.GreedyGuarded(req.ev)
		if err != nil {
			return err
		}
		out.strategy, out.cost, out.estimated = res.Strategy, int64(res.Cost), false
		return nil

	case RungEstimate:
		return estimateRung(req, g, out)
	}
	return fmt.Errorf("serve: unknown rung %d", int(rung))
}

// yannakakisRung runs the governed acyclic fast path: a full semijoin
// reduction along the scheme's GYO join trees, then the bottom-up join
// of the reduced relations along the same trees. Planning and execution
// are one pass here — the reduced join IS the method and its cost is
// measured, not estimated — so when execution was requested the result
// produced during planning is kept and maybeExecute is skipped. The
// reported strategy is the equivalent binary join-tree plan, which is
// what the plan cache replays for repeat fingerprints.
func yannakakisRung(req ladderRequest, g *guard.Guard, out *ladderOutcome) error {
	ev, err := semijoin.YannakakisGuarded(req.db, g, req.rec)
	if err != nil {
		return err
	}
	out.strategy, out.cost, out.estimated = ev.Strategy, int64(ev.Tau()), false
	if req.execute && ev.Result != nil {
		out.resultSize = ev.Result.Size()
		out.haveResult = true
		out.executed = true
	}
	return nil
}

// estimateRung plans from statistics only: gather the catalog (a linear
// pass over base relations, timed in plan.catalog.wall), then run the
// model-costed full-space DP. It still honors the request context, and
// its DP states charge the rung's guard — the same -max-states that
// governs exact planning — but it executes nothing itself, so on the
// degradation path it answers even when every execution budget is
// spent. The catalog is selected by the request's plan mode; the
// degradation path (PlanExact) uses the uniform model.
func estimateRung(req ladderRequest, g *guard.Guard, out *ladderOutcome) (err error) {
	defer guard.Protect(&err)
	if cerr := req.ctx.Err(); cerr != nil {
		return &guard.CancelError{Phase: "estimate", Cause: cerr}
	}
	cwatch := req.rec.Timer(obs.MetricPlanCatalogWall).Start()
	var size optimizer.SizeModel
	var modelCost func(*strategy.Node) float64
	if req.planMode == PlanHistogram {
		cat := estimate.NewHistogramCatalog(req.db)
		size, modelCost = cat.Size, cat.Cost
	} else {
		cat := estimate.NewCatalog(req.db)
		size, modelCost = cat.Size, cat.Cost
	}
	cwatch.Stop()
	var plan *strategy.Node
	var est float64
	if req.db.Len() <= estimateDPMaxRelations {
		res, rerr := optimizer.OptimizeModelObserved(req.db, size, optimizer.SpaceAll, g, req.rec)
		if rerr != nil {
			return rerr
		}
		plan, est = res.Strategy, res.Est
	} else {
		order := make([]int, req.db.Len())
		for i := range order {
			order[i] = i
		}
		plan = strategy.LeftDeep(order...)
		est = modelCost(plan)
	}
	out.strategy, out.cost, out.estimated = plan, int64(est), true
	return nil
}

// maybeExecute materializes the plan's steps (charging the rung's
// guard) when the request asked for execution; the trap converts a trip
// during execution into this rung's failure, sending the ladder down.
func (req ladderRequest) maybeExecute(out *ladderOutcome) (err error) {
	if !req.execute {
		return nil
	}
	defer guard.Trap(&err)
	out.cost = int64(out.strategy.Cost(req.ev))
	out.executed = true
	return nil
}
