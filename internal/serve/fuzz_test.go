package serve

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzServeRequest feeds arbitrary bytes to the service's request
// decoder — the untrusted-input surface of POST /v1/analyze and
// /v1/query. Invariant: DecodeRequest either errors or returns a
// well-formed (request, database) pair, never panics, and decoding the
// same bytes twice is deterministic. Seeds live in
// testdata/fuzz/FuzzServeRequest and run in ordinary go test; use
// `go test -fuzz=FuzzServeRequest ./internal/serve` for exploration.
func FuzzServeRequest(f *testing.F) {
	// Inline seeds cover the request-envelope shapes; the committed
	// corpus under testdata/fuzz adds embedded-database edge cases.
	for _, s := range []string{
		`{"tenant":"standard","database":{"relations":[{"name":"R","attrs":["A","B"],"rows":[["1","x"]]}]}}`,
		`{"database":{"relations":[{"attrs":["A"],"rows":[]}]},"execute":true,"noCache":true}`,
		`{}`,
		``,
		`not json`,
		`{"tenant":"free"}`,
		`{"database":null}`,
		`{"database":{"relations":[]}}`,
		`{"database":"relations"}`,
		`{"unknown":1,"database":{"relations":[{"attrs":["A"],"rows":[["1"]]}]}}`,
		`{"database":{"relations":[{"attrs":["A"],"rows":[["1"]]}]}} trailing`,
		`{"tenant":3,"database":{"relations":[{"attrs":["A"],"rows":[["1"]]}]}}`,
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, db, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			if req2, db2, err2 := DecodeRequest(bytes.NewReader(data)); err2 == nil {
				t.Fatalf("rejection not deterministic: first %v, then %+v %v", err, req2, db2)
			}
			return
		}
		if req == nil || db == nil {
			t.Fatalf("accepted request returned nils: %+v %+v", req, db)
		}
		if db.Len() == 0 {
			t.Fatal("accepted request carries an empty database")
		}
		if db.All().Len() != db.Len() {
			t.Fatalf("database universe %v inconsistent with %d relations", db.All(), db.Len())
		}
		// Accepting is deterministic too: the same bytes decode to a
		// database with identical relations.
		_, again, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("second decode of accepted input failed: %v", err)
		}
		if again.Len() != db.Len() {
			t.Fatal("decoding the same request twice changed the relation count")
		}
		for i := 0; i < db.Len(); i++ {
			if !again.Relation(i).Equal(db.Relation(i)) {
				t.Fatalf("decoding the same request twice changed relation %d", i)
			}
		}
	})
}

// TestFuzzCorpusCommitted guards the seed corpus the CI fuzz-smoke job
// starts from: the directory must exist and every file must decode
// without panicking right now, not just under -fuzz.
func TestFuzzCorpusCommitted(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzServeRequest")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("seed corpus missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("seed corpus is empty")
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(data, []byte("go test fuzz v1\n")) {
			t.Errorf("%s: not a go-fuzz corpus file", e.Name())
		}
	}
}
