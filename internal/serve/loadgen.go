package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"multijoin/internal/database"
	"multijoin/internal/guard"
)

// The load generator. One engine drives three consumers — cmd/joinload
// over a real socket, the chaos test suite directly against the
// handler, and the bench pipeline's serve section — so the acceptance
// checks ("every shed carries Retry-After", "every request is answered
// or typed") are asserted by the same code everywhere.

// Doer issues one request; implementations differ only in transport.
// The context bounds the single request — it is attached to the
// outgoing http.Request, so server-side deadline propagation and
// load-run cancellation both flow through it.
type Doer interface {
	Do(ctx context.Context, method, path string, body []byte) (*DoResult, error)
}

// DoResult is one response, reduced to what the load generator checks.
type DoResult struct {
	Status     int
	RetryAfter string
	Body       []byte
}

// HandlerDoer drives an http.Handler in-process — no sockets, so the
// chaos suite can push thousands of concurrent requests under -race
// without ephemeral-port limits.
type HandlerDoer struct {
	Handler http.Handler
}

// Do issues one in-process request.
func (d HandlerDoer) Do(ctx context.Context, method, path string, body []byte) (*DoResult, error) {
	req := httptest.NewRequest(method, path, bytes.NewReader(body)).WithContext(ctx)
	w := httptest.NewRecorder()
	d.Handler.ServeHTTP(w, req)
	res := w.Result()
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	return &DoResult{Status: res.StatusCode, RetryAfter: res.Header.Get("Retry-After"), Body: b}, nil
}

// ClientDoer drives a live server over HTTP — cmd/joinload's transport.
type ClientDoer struct {
	Client  *http.Client
	BaseURL string
}

// Do issues one HTTP request.
func (d ClientDoer) Do(ctx context.Context, method, path string, body []byte) (*DoResult, error) {
	req, err := http.NewRequestWithContext(ctx, method, d.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	res, err := d.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	return &DoResult{Status: res.StatusCode, RetryAfter: res.Header.Get("Retry-After"), Body: b}, nil
}

// BuildRequestBody encodes a ready-to-send request body for the given
// database — the helper cmd/joinload, the chaos suite and the bench
// pipeline all build their mixes with.
func BuildRequestBody(db *database.Database, tenant string, execute, noCache bool) ([]byte, error) {
	return BuildRequestBodyMode(db, tenant, execute, noCache, "")
}

// BuildRequestBodyMode is BuildRequestBody with an explicit plan mode
// ("" or "exact" for exact planning, "estimate"/"histogram" for the
// statistics-driven fast path).
func BuildRequestBodyMode(db *database.Database, tenant string, execute, noCache bool, planMode string) ([]byte, error) {
	var dbJSON bytes.Buffer
	if err := database.EncodeJSON(&dbJSON, db); err != nil {
		return nil, err
	}
	return json.Marshal(Request{
		Tenant:   tenant,
		Database: json.RawMessage(dbJSON.Bytes()),
		Execute:  execute,
		NoCache:  noCache,
		PlanMode: planMode,
	})
}

// LoadCase is one request template in the mix; the generator cycles
// through the cases round-robin.
type LoadCase struct {
	// Path is the endpoint ("/v1/query" or "/v1/analyze").
	Path string
	// Tenant names the case's tenant class for the per-tenant
	// breakdown; empty buckets under "unknown".
	Tenant string
	// Body is the JSON request body.
	Body []byte
}

// LoadConfig drives one load run.
type LoadConfig struct {
	// Requests is the total number of requests to issue.
	Requests int
	// Concurrency is the number of worker goroutines.
	Concurrency int
	// Cases is the request mix, cycled round-robin; must be non-empty.
	Cases []LoadCase
}

// LoadReport aggregates a load run. Outcomes partition Requests: every
// request is exactly one of OK, Shed, Refused (draining/malformed),
// Deadline or Failed.
type LoadReport struct {
	// Requests is the number issued.
	Requests int `json:"requests"`
	// OK counts 200 responses.
	OK int `json:"ok"`
	// Degraded counts 200 responses answered below the start rung.
	Degraded int `json:"degraded"`
	// CacheHits counts 200 responses served from the plan cache.
	CacheHits int `json:"cacheHits"`
	// Shed counts 429 responses.
	Shed int `json:"shed"`
	// Refused counts 400/405/503 responses.
	Refused int `json:"refused"`
	// Deadline counts 504 responses.
	Deadline int `json:"deadline"`
	// Failed counts transport errors, unexpected statuses, unparseable
	// bodies, and protocol violations (a shed without Retry-After).
	Failed int `json:"failed"`
	// Violations samples the first few failure descriptions.
	Violations []string `json:"violations,omitempty"`
	// LatencyP50NS and LatencyP99NS are request-latency quantiles over
	// all requests, in nanoseconds.
	LatencyP50NS int64 `json:"latencyP50Ns"`
	// LatencyP99NS is the 99th-percentile request latency.
	LatencyP99NS int64 `json:"latencyP99Ns"`
	// ShedP50NS and ShedP99NS are latency quantiles over shed (429)
	// responses only — the "shedding stays fast" acceptance number.
	ShedP50NS int64 `json:"shedP50Ns"`
	// ShedP99NS is the 99th-percentile shed latency.
	ShedP99NS int64 `json:"shedP99Ns"`
	// PerTenant breaks the run down by tenant class, keyed by
	// LoadCase.Tenant.
	PerTenant map[string]*TenantLoadStats `json:"perTenant,omitempty"`
}

// TenantLoadStats is one tenant class's slice of a load run.
type TenantLoadStats struct {
	// Requests is the number issued for this class.
	Requests int `json:"requests"`
	// OK counts 200 responses.
	OK int `json:"ok"`
	// Degraded counts 200 responses answered below the start rung.
	Degraded int `json:"degraded"`
	// Shed counts 429 responses.
	Shed int `json:"shed"`
	// Refused counts 400/405/503 responses.
	Refused int `json:"refused"`
	// Deadline counts 504 responses.
	Deadline int `json:"deadline"`
	// Failed counts transport errors and protocol violations.
	Failed int `json:"failed"`
	// LatencyP50NS and LatencyP99NS are this class's latency quantiles.
	LatencyP50NS int64 `json:"latencyP50Ns"`
	// LatencyP99NS is the class's 99th-percentile latency.
	LatencyP99NS int64 `json:"latencyP99Ns"`
}

// maxViolationSamples bounds the failure descriptions kept verbatim.
const maxViolationSamples = 8

// ShedRate is the fraction of requests shed.
func (r *LoadReport) ShedRate() float64 {
	if r.Requests == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Requests)
}

// CacheHitRate is the fraction of OK responses served from the cache.
func (r *LoadReport) CacheHitRate() float64 {
	if r.OK == 0 {
		return 0
	}
	return float64(r.CacheHits) / float64(r.OK)
}

// RunLoad issues cfg.Requests requests through the Doer from
// cfg.Concurrency workers and aggregates the outcomes. The context is
// threaded into every request; cancelling it stops the workers after
// their in-flight request, and the report then covers the requests
// actually issued (the outcome partition holds over that count).
func RunLoad(ctx context.Context, d Doer, cfg LoadConfig) (*LoadReport, error) {
	if ctx == nil {
		return nil, fmt.Errorf("serve: load run needs a non-nil context")
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("serve: load run needs a positive request count")
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 1
	}
	if len(cfg.Cases) == 0 {
		return nil, fmt.Errorf("serve: load run needs at least one case")
	}

	var next atomic.Int64
	results := make([]workerTally, cfg.Concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		tally := &results[w]
		go func() {
			defer func() {
				if err := guard.Recovered(recover()); err != nil {
					tally.fail("worker panic: " + err.Error())
				}
				wg.Done()
			}()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= cfg.Requests {
					return
				}
				c := cfg.Cases[i%len(cfg.Cases)]
				tally.issued++
				start := time.Now()
				res, err := d.Do(ctx, http.MethodPost, c.Path, c.Body)
				tally.observe(c.Tenant, res, err, time.Since(start))
			}
		}()
	}
	wg.Wait()

	report := &LoadReport{}
	var all, shed []time.Duration
	tenantLat := map[string][]time.Duration{}
	for i := range results {
		t := &results[i]
		report.Requests += t.issued
		report.OK += t.ok
		report.Degraded += t.degraded
		report.CacheHits += t.cacheHits
		report.Shed += t.shed
		report.Refused += t.refused
		report.Deadline += t.deadline
		report.Failed += t.failed
		for _, v := range t.violations {
			if len(report.Violations) < maxViolationSamples {
				report.Violations = append(report.Violations, v)
			}
		}
		all = append(all, t.latencies...)
		shed = append(shed, t.shedLatencies...)
		for name, tt := range t.perTenant {
			if report.PerTenant == nil {
				report.PerTenant = map[string]*TenantLoadStats{}
			}
			ts := report.PerTenant[name]
			if ts == nil {
				ts = &TenantLoadStats{}
				report.PerTenant[name] = ts
			}
			ts.Requests += tt.requests
			ts.OK += tt.ok
			ts.Degraded += tt.degraded
			ts.Shed += tt.shed
			ts.Refused += tt.refused
			ts.Deadline += tt.deadline
			ts.Failed += tt.failed
			tenantLat[name] = append(tenantLat[name], tt.latencies...)
		}
	}
	report.LatencyP50NS = quantileNS(all, 0.50)
	report.LatencyP99NS = quantileNS(all, 0.99)
	report.ShedP50NS = quantileNS(shed, 0.50)
	report.ShedP99NS = quantileNS(shed, 0.99)
	for name, lat := range tenantLat {
		report.PerTenant[name].LatencyP50NS = quantileNS(lat, 0.50)
		report.PerTenant[name].LatencyP99NS = quantileNS(lat, 0.99)
	}
	return report, nil
}

// workerTally is one worker's private aggregation; workers never share
// state while running, so the hot path takes no locks.
type workerTally struct {
	issued                   int
	ok, degraded, cacheHits  int
	shed, refused, deadline  int
	failed                   int
	violations               []string
	latencies, shedLatencies []time.Duration
	perTenant                map[string]*tenantTally
}

// tenantTally is one worker's per-tenant-class slice of the run.
type tenantTally struct {
	requests, ok, degraded          int
	shed, refused, deadline, failed int
	latencies                       []time.Duration
}

func (t *workerTally) fail(msg string) {
	t.failed++
	if len(t.violations) < maxViolationSamples {
		t.violations = append(t.violations, msg)
	}
}

// tenant returns the worker's bucket for the class, creating it on
// first use.
func (t *workerTally) tenant(name string) *tenantTally {
	if name == "" {
		name = "unknown"
	}
	if t.perTenant == nil {
		t.perTenant = map[string]*tenantTally{}
	}
	tt := t.perTenant[name]
	if tt == nil {
		tt = &tenantTally{}
		t.perTenant[name] = tt
	}
	return tt
}

// observe classifies one response against the service protocol.
func (t *workerTally) observe(tenant string, res *DoResult, err error, took time.Duration) {
	t.latencies = append(t.latencies, took)
	tt := t.tenant(tenant)
	tt.requests++
	tt.latencies = append(tt.latencies, took)
	if err != nil {
		t.fail("transport: " + err.Error())
		tt.failed++
		return
	}
	switch res.Status {
	case http.StatusOK:
		var body Response
		if jerr := json.Unmarshal(res.Body, &body); jerr != nil {
			t.fail("unparseable 200 body: " + jerr.Error())
			tt.failed++
			return
		}
		t.ok++
		tt.ok++
		if body.Degraded {
			t.degraded++
			tt.degraded++
		}
		if body.CacheHit {
			t.cacheHits++
		}
	case http.StatusTooManyRequests:
		t.shed++
		tt.shed++
		t.shedLatencies = append(t.shedLatencies, took)
		if secs, aerr := parseRetryAfter(res.RetryAfter); aerr != nil || secs < 1 {
			t.fail("shed without usable Retry-After: " + res.RetryAfter)
			tt.failed++
		}
	case http.StatusBadRequest, http.StatusMethodNotAllowed, http.StatusServiceUnavailable:
		t.refused++
		tt.refused++
	case http.StatusGatewayTimeout:
		t.deadline++
		tt.deadline++
	default:
		t.fail(fmt.Sprintf("unexpected status %d", res.Status))
		tt.failed++
	}
}

// parseRetryAfter parses the delay-seconds form of the header.
func parseRetryAfter(v string) (int, error) {
	var secs int
	if _, err := fmt.Sscanf(v, "%d", &secs); err != nil {
		return 0, err
	}
	return secs, nil
}

// quantileNS returns the q-quantile of the samples in nanoseconds
// (nearest-rank), 0 when empty.
func quantileNS(samples []time.Duration, q float64) int64 {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q * float64(len(samples)-1))
	return samples[idx].Nanoseconds()
}
