package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"multijoin/internal/obs"
)

// The flight recorder: a bounded ring of the most recent *interesting*
// requests — shed, degraded, errored, or slower than the threshold —
// each kept with its full span tree. It answers GET /debug/requests, so
// an operator staring at a latency spike can pull the actual traces of
// the requests that hurt without any external tracing backend. Healthy
// fast requests are not recorded; the ring holds only the tail worth
// debugging.

// FlightSchema identifies the /debug/requests JSON shape.
const FlightSchema = "multijoin/flightrecord/v1"

const (
	// defaultFlightCap is the ring capacity when Config.FlightCap is 0.
	defaultFlightCap = 64
	// defaultSlowThreshold marks requests as slow when
	// Config.SlowThreshold is 0.
	defaultSlowThreshold = time.Second
)

// FlightEntry is one recorded request in the flight ring.
type FlightEntry struct {
	// TraceID is the request's trace identifier.
	TraceID string `json:"traceId"`
	// Endpoint is the request path.
	Endpoint string `json:"endpoint"`
	// Tenant is the resolved tenant class; empty when the request died
	// before tenant resolution.
	Tenant string `json:"tenant,omitempty"`
	// Outcome classifies the request: "ok", "shed", "deadline",
	// "bad_request" or "internal".
	Outcome string `json:"outcome"`
	// Status is the HTTP status answered.
	Status int `json:"status"`
	// Rung names the answering ladder rung (successful requests only).
	Rung string `json:"rung,omitempty"`
	// Degraded marks answers from below the class's start rung.
	Degraded bool `json:"degraded,omitempty"`
	// DurNS is the request's wall-clock duration in nanoseconds.
	DurNS int64 `json:"durNs"`
	// Tuples and States are the answering guard's ledger spend.
	Tuples int64 `json:"tuples"`
	// States is the answering guard's state-budget spend.
	States int64 `json:"states"`
	// Error is the failure message (failed requests only).
	Error string `json:"error,omitempty"`
	// Spans is the request's completed span tree.
	Spans []obs.SpanRecord `json:"spans,omitempty"`
}

// FlightDoc is the body of GET /debug/requests.
type FlightDoc struct {
	// Schema is FlightSchema.
	Schema string `json:"schema"`
	// Capacity is the ring size.
	Capacity int `json:"capacity"`
	// Recorded counts every entry ever recorded; Evicted counts entries
	// overwritten by newer ones. Recorded − Evicted == len(Entries).
	Recorded int64 `json:"recorded"`
	// Evicted counts entries overwritten past the ring capacity.
	Evicted int64 `json:"evicted"`
	// Entries holds the retained entries, oldest first.
	Entries []FlightEntry `json:"entries"`
}

// flightRecorder is the ring. All methods are safe for concurrent use.
type flightRecorder struct {
	mu       sync.Mutex
	cap      int
	slow     time.Duration
	buf      []FlightEntry
	start    int // index of the oldest entry once the ring is full
	recorded int64
	evicted  int64
}

// newFlightRecorder builds the ring, applying defaults for zero config.
func newFlightRecorder(capacity int, slow time.Duration) *flightRecorder {
	if capacity <= 0 {
		capacity = defaultFlightCap
	}
	if slow <= 0 {
		slow = defaultSlowThreshold
	}
	return &flightRecorder{cap: capacity, slow: slow}
}

// interesting reports whether the request belongs in the ring: any
// non-200 answer, any degraded answer, or anything slower than the
// threshold.
func (f *flightRecorder) interesting(e FlightEntry) bool {
	return e.Status != 200 || e.Degraded || e.DurNS >= f.slow.Nanoseconds()
}

// record appends an entry, overwriting the oldest when full.
func (f *flightRecorder) record(e FlightEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.recorded++
	if len(f.buf) < f.cap {
		f.buf = append(f.buf, e)
		return
	}
	f.buf[f.start] = e
	f.start = (f.start + 1) % f.cap
	f.evicted++
}

// snapshot copies the ring into its serializable form, oldest first.
func (f *flightRecorder) snapshot() FlightDoc {
	f.mu.Lock()
	defer f.mu.Unlock()
	entries := make([]FlightEntry, 0, len(f.buf))
	for i := 0; i < len(f.buf); i++ {
		entries = append(entries, f.buf[(f.start+i)%len(f.buf)])
	}
	return FlightDoc{
		Schema:   FlightSchema,
		Capacity: f.cap,
		Recorded: f.recorded,
		Evicted:  f.evicted,
		Entries:  entries,
	}
}

// Flight returns the server's current flight-recorder contents.
func (s *Server) Flight() FlightDoc { return s.flight.snapshot() }

// DecodeFlight reads and validates a flight-recorder document: it must
// parse strictly, carry FlightSchema, and satisfy the retention
// identity Recorded − Evicted == len(Entries) ≤ Capacity.
func DecodeFlight(r io.Reader) (*FlightDoc, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc FlightDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("serve: decoding flight JSON: %w", err)
	}
	if doc.Schema != FlightSchema {
		return nil, fmt.Errorf("serve: flight schema %q, want %q", doc.Schema, FlightSchema)
	}
	if doc.Capacity <= 0 {
		return nil, fmt.Errorf("serve: flight capacity %d, want positive", doc.Capacity)
	}
	if doc.Recorded-doc.Evicted != int64(len(doc.Entries)) {
		return nil, fmt.Errorf("serve: flight accounting broken: recorded %d − evicted %d ≠ %d entries",
			doc.Recorded, doc.Evicted, len(doc.Entries))
	}
	if len(doc.Entries) > doc.Capacity {
		return nil, fmt.Errorf("serve: flight holds %d entries over capacity %d",
			len(doc.Entries), doc.Capacity)
	}
	return &doc, nil
}
