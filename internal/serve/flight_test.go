package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestFlightRingEviction(t *testing.T) {
	f := newFlightRecorder(2, time.Second)
	for i := 0; i < 5; i++ {
		f.record(FlightEntry{TraceID: fmt.Sprintf("t%d", i), Status: 429})
	}
	doc := f.snapshot()
	if doc.Recorded != 5 || doc.Evicted != 3 {
		t.Fatalf("recorded/evicted = %d/%d, want 5/3", doc.Recorded, doc.Evicted)
	}
	if len(doc.Entries) != 2 {
		t.Fatalf("retained %d entries, want 2", len(doc.Entries))
	}
	// Oldest first: the survivors are the last two recorded, in order.
	if doc.Entries[0].TraceID != "t3" || doc.Entries[1].TraceID != "t4" {
		t.Errorf("retained %q/%q, want t3/t4", doc.Entries[0].TraceID, doc.Entries[1].TraceID)
	}
	if err := validateFlightDoc(t, doc); err != nil {
		t.Errorf("snapshot fails its own decoder: %v", err)
	}
}

// validateFlightDoc round-trips a doc through DecodeFlight.
func validateFlightDoc(t *testing.T, doc FlightDoc) error {
	t.Helper()
	raw, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeFlight(bytes.NewReader(raw))
	return err
}

func TestFlightInteresting(t *testing.T) {
	f := newFlightRecorder(4, time.Second)
	for name, tc := range map[string]struct {
		e    FlightEntry
		want bool
	}{
		"healthy fast": {FlightEntry{Status: 200, DurNS: 1e6}, false},
		"shed":         {FlightEntry{Status: 429, DurNS: 1e6}, true},
		"bad request":  {FlightEntry{Status: 400, DurNS: 1e6}, true},
		"deadline":     {FlightEntry{Status: 504, DurNS: 1e6}, true},
		"degraded ok":  {FlightEntry{Status: 200, Degraded: true, DurNS: 1e6}, true},
		"slow ok":      {FlightEntry{Status: 200, DurNS: 2e9}, true},
		"at threshold": {FlightEntry{Status: 200, DurNS: 1e9}, true},
		"just under":   {FlightEntry{Status: 200, DurNS: 1e9 - 1}, false},
	} {
		if got := f.interesting(tc.e); got != tc.want {
			t.Errorf("%s: interesting = %v, want %v", name, got, tc.want)
		}
	}
}

func TestDecodeFlightRejectsGarbage(t *testing.T) {
	for name, body := range map[string]string{
		"not json":       "nope",
		"wrong schema":   `{"schema":"multijoin/flightrecord/v0","capacity":4,"recorded":0,"evicted":0,"entries":[]}`,
		"no capacity":    `{"schema":"multijoin/flightrecord/v1","capacity":0,"recorded":0,"evicted":0,"entries":[]}`,
		"accounting":     `{"schema":"multijoin/flightrecord/v1","capacity":4,"recorded":3,"evicted":0,"entries":[]}`,
		"over capacity":  `{"schema":"multijoin/flightrecord/v1","capacity":1,"recorded":2,"evicted":0,"entries":[{"traceId":"a","endpoint":"/x","outcome":"shed","status":429,"durNs":1,"tuples":0,"states":0},{"traceId":"b","endpoint":"/x","outcome":"shed","status":429,"durNs":1,"tuples":0,"states":0}]}`,
		"unknown field":  `{"schema":"multijoin/flightrecord/v1","capacity":4,"recorded":0,"evicted":0,"entries":[],"extra":1}`,
		"unknown nested": `{"schema":"multijoin/flightrecord/v1","capacity":4,"recorded":1,"evicted":0,"entries":[{"traceId":"a","endpoint":"/x","outcome":"shed","status":429,"durNs":1,"tuples":0,"states":0,"bogus":true}]}`,
	} {
		if _, err := DecodeFlight(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	good := `{"schema":"multijoin/flightrecord/v1","capacity":4,"recorded":1,"evicted":0,"entries":[{"traceId":"a","endpoint":"/x","outcome":"shed","status":429,"durNs":1,"tuples":0,"states":0}]}`
	if _, err := DecodeFlight(strings.NewReader(good)); err != nil {
		t.Errorf("valid doc rejected: %v", err)
	}
}

// TestFlightEndpointCapturesInteresting drives real requests and checks
// what the ring keeps: failures yes, healthy fast answers no.
func TestFlightEndpointCapturesInteresting(t *testing.T) {
	srv, doer, _ := newTestServer(t, Config{})

	// A healthy fast request is not interesting.
	res, err := doer.Do(context.Background(), http.MethodPost, "/v1/query", mustBody(t, "standard", false, false))
	if err != nil {
		t.Fatal(err)
	}
	decode200(t, res)
	if doc := srv.Flight(); len(doc.Entries) != 0 {
		t.Fatalf("healthy request recorded: %+v", doc.Entries)
	}

	// A bad request is captured with its outcome and status.
	res, _ = doer.Do(context.Background(), http.MethodPost, "/v1/query", []byte("not json"))
	if res.Status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", res.Status)
	}
	doc := srv.Flight()
	if len(doc.Entries) != 1 {
		t.Fatalf("bad request not recorded: %+v", doc)
	}
	e := doc.Entries[0]
	if e.Outcome != "bad_request" || e.Status != 400 || e.Error == "" {
		t.Errorf("entry misclassified: %+v", e)
	}
	if !isLowerHex(e.TraceID, 32) || e.Endpoint != "/v1/query" {
		t.Errorf("entry identity wrong: %+v", e)
	}
	if len(e.Spans) == 0 {
		t.Error("entry has no spans")
	}

	// The HTTP surface serves the same document, strictly decodable.
	res, _ = doer.Do(context.Background(), http.MethodGet, "/debug/requests", nil)
	if res.Status != http.StatusOK {
		t.Fatalf("GET /debug/requests: status %d", res.Status)
	}
	got, err := DecodeFlight(bytes.NewReader(res.Body))
	if err != nil {
		t.Fatalf("endpoint document invalid: %v\n%s", err, res.Body)
	}
	if got.Recorded != 1 || len(got.Entries) != 1 || got.Entries[0].TraceID != e.TraceID {
		t.Errorf("endpoint document disagrees with Flight(): %+v", got)
	}
	if res, _ := doer.Do(context.Background(), http.MethodPost, "/debug/requests", nil); res.Status != http.StatusMethodNotAllowed {
		t.Errorf("POST /debug/requests: status %d, want 405", res.Status)
	}
}

// TestFlightCapturesSlowRequests drops the threshold to 1ns so a healthy
// answer becomes "slow" and lands in the ring with its full trace.
func TestFlightCapturesSlowRequests(t *testing.T) {
	srv, doer, _ := newTestServer(t, Config{SlowThreshold: time.Nanosecond})
	res, err := doer.Do(context.Background(), http.MethodPost, "/v1/query", mustBody(t, "standard", true, false))
	if err != nil {
		t.Fatal(err)
	}
	out := decode200(t, res)

	doc := srv.Flight()
	if len(doc.Entries) != 1 {
		t.Fatalf("slow request not recorded: %+v", doc)
	}
	e := doc.Entries[0]
	if e.Outcome != "ok" || e.Status != 200 || e.Rung != out.Rung {
		t.Errorf("entry disagrees with the response: %+v vs %+v", e, out)
	}
	if e.Tuples != out.Guard.Tuples.Spent || e.States != out.Guard.States.Spent {
		t.Errorf("entry spend %d/%d ≠ response guard %d/%d",
			e.Tuples, e.States, out.Guard.Tuples.Spent, out.Guard.States.Spent)
	}
	if len(e.Spans) != len(out.Trace.Spans) {
		t.Errorf("entry spans %d ≠ trace spans %d", len(e.Spans), len(out.Trace.Spans))
	}
}
