package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"multijoin/internal/guard"
	"multijoin/internal/obs"
)

// Admission control. Each tenant class owns a fixed pool of concurrency
// slots and a bounded wait queue in front of it. A request first joins
// the queue; if the queue is already full it is shed immediately — the
// server answers 429 with a Retry-After computed from the deadlines of
// the requests currently holding slots — and if a slot frees before the
// request's context dies, it is admitted. Shedding at the door instead
// of queueing without bound is what keeps admission latency flat when
// the engine saturates: the paper's own results say some inputs *will*
// exhaust any budget (intermediate blow-up is workload-dependent), so
// overload is a normal state, not an error.

// ErrShed is returned when a class's wait queue is full.
var ErrShed = errors.New("serve: admission queue full, request shed")

// classGate is the admission state for one tenant class.
type classGate struct {
	class TenantClass
	slots chan struct{} // buffered to MaxConcurrent; a token = a running request

	mu      sync.Mutex
	waiting int                       // requests blocked on a slot
	holders map[*guard.Guard]struct{} // guards of requests currently holding slots
}

// admission is the per-class gate registry plus the shared metrics.
type admission struct {
	gates map[string]*classGate
	rec   *obs.Recorder

	cShed    *obs.Counter
	tAdmit   *obs.Timer
	tShed    *obs.Timer
	gWaiting *obs.Gauge
	gRunning *obs.Gauge
}

func newAdmission(ts *tenantSet, rec *obs.Recorder) *admission {
	a := &admission{
		gates:    make(map[string]*classGate, len(ts.byName)),
		rec:      rec,
		cShed:    rec.Counter(obs.MetricServeShed),
		tAdmit:   rec.Timer(obs.MetricServeAdmitWait),
		tShed:    rec.Timer(obs.MetricServeShedWait),
		gWaiting: rec.Gauge(obs.MetricServeAdmitWaiting),
		gRunning: rec.Gauge(obs.MetricServeAdmitRunning),
	}
	for name, c := range ts.byName {
		a.gates[name] = &classGate{
			class:   c,
			slots:   make(chan struct{}, c.MaxConcurrent),
			holders: make(map[*guard.Guard]struct{}),
		}
	}
	return a
}

// ticket is an admitted request's hold on a slot; release returns the
// slot exactly once.
type ticket struct {
	gate     *classGate
	adm      *admission
	guard    *guard.Guard
	released sync.Once
}

// admit runs the admission protocol for one request of the class. On
// success the returned ticket must be released; ErrShed means the queue
// was full, a context error means the caller died while waiting.
func (a *admission) admit(ctx context.Context, class string) (*ticket, error) {
	gate := a.gates[class]
	start := time.Now()

	gate.mu.Lock()
	if gate.waiting >= gate.class.MaxQueue {
		// Fast-path check: even a full queue admits instantly when a
		// slot is free right now (the queue bounds *waiters*, not
		// throughput).
		select {
		case gate.slots <- struct{}{}:
			gate.mu.Unlock()
			a.tAdmit.Observe(time.Since(start))
			return a.admitted(gate), nil
		default:
			gate.mu.Unlock()
			// The shed decision itself must stay fast under overload —
			// this timer is the "bounded admission latency while
			// shedding" acceptance metric, measured server-side so
			// client-goroutine scheduling delay cannot pollute it.
			a.tShed.Observe(time.Since(start))
			a.cShed.Inc()
			a.rec.Counter(obs.MetricTenantShed(class)).Inc()
			return nil, ErrShed
		}
	}
	gate.waiting++
	a.gWaiting.Add(1)
	gate.mu.Unlock()

	defer func() {
		gate.mu.Lock()
		gate.waiting--
		gate.mu.Unlock()
		a.gWaiting.Add(-1)
	}()

	select {
	case gate.slots <- struct{}{}:
		a.tAdmit.Observe(time.Since(start))
		return a.admitted(gate), nil
	case <-ctx.Done():
		a.tAdmit.Observe(time.Since(start))
		return nil, &guard.CancelError{Phase: "admit", Cause: ctx.Err()}
	}
}

// admitted builds the ticket for a request that just took a slot.
func (a *admission) admitted(gate *classGate) *ticket {
	a.gRunning.Add(1)
	return &ticket{gate: gate, adm: a}
}

// setGuard registers the admitted request's guard so concurrent sheds
// can read its deadline for Retry-After hints.
func (t *ticket) setGuard(g *guard.Guard) {
	t.guard = g
	t.gate.mu.Lock()
	t.gate.holders[g] = struct{}{}
	t.gate.mu.Unlock()
}

// release returns the slot and deregisters the guard. Safe to call more
// than once; only the first call has effect.
func (t *ticket) release() {
	t.released.Do(func() {
		if t.guard != nil {
			t.gate.mu.Lock()
			delete(t.gate.holders, t.guard)
			t.gate.mu.Unlock()
		}
		<-t.gate.slots
		t.adm.gRunning.Add(-1)
	})
}

// retryAfter estimates when a shed caller should try again: the soonest
// deadline among the class's in-flight requests — a slot must free by
// then, because every request dies with its deadline — and the class
// deadline when nothing is in flight or deadlines are unreadable. The
// result is clamped to [1s, class deadline] and rounded up to whole
// seconds, the granularity of the Retry-After header.
func (a *admission) retryAfter(class string, now time.Time) time.Duration {
	gate := a.gates[class]
	est := gate.class.Deadline

	gate.mu.Lock()
	for g := range gate.holders {
		if rem, ok := g.Snapshot().Remaining(now); ok && rem >= 0 && rem < est {
			est = rem
		}
	}
	gate.mu.Unlock()

	rounded := est.Truncate(time.Second)
	if rounded < est {
		rounded += time.Second
	}
	if rounded < time.Second {
		rounded = time.Second
	}
	if max := gate.class.Deadline; rounded > max && max >= time.Second {
		rounded = max.Truncate(time.Second)
		if rounded < max {
			rounded += time.Second
		}
	}
	return rounded
}
