package serve

import (
	"context"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"multijoin/internal/guard"
	"multijoin/internal/obs"
)

func testAdmission(t *testing.T, class TenantClass) (*admission, *obs.Recorder) {
	t.Helper()
	ts, err := newTenantSet([]TenantClass{class})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder()
	return newAdmission(ts, rec), rec
}

func TestAdmitShedsWhenSaturated(t *testing.T) {
	adm, rec := testAdmission(t, TenantClass{
		Name: "tiny", Deadline: time.Second, MaxConcurrent: 1, MaxQueue: 0, StartRung: RungGreedy,
	})
	ctx := context.Background()

	tk1, err := adm.admit(ctx, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	// Slot taken, queue depth 0: the next arrival is shed immediately.
	if _, err := adm.admit(ctx, "tiny"); !errors.Is(err, ErrShed) {
		t.Fatalf("want ErrShed, got %v", err)
	}
	if rec.Counter("serve.shed").Value() != 1 || rec.Counter("serve.tenant.tiny.shed").Value() != 1 {
		t.Errorf("shed counters: global %d, tenant %d, want 1/1",
			rec.Counter("serve.shed").Value(), rec.Counter("serve.tenant.tiny.shed").Value())
	}

	// Releasing frees the slot; admission succeeds again. release is
	// idempotent.
	tk1.release()
	tk1.release()
	tk2, err := adm.admit(ctx, "tiny")
	if err != nil {
		t.Fatalf("slot not reusable after release: %v", err)
	}
	tk2.release()
}

func TestAdmitQueuesUntilSlotFrees(t *testing.T) {
	adm, _ := testAdmission(t, TenantClass{
		Name: "q", Deadline: time.Second, MaxConcurrent: 1, MaxQueue: 4, StartRung: RungGreedy,
	})
	ctx := context.Background()
	tk1, err := adm.admit(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	admitted := make(chan struct{})
	go func() {
		defer wg.Done()
		tk2, err := adm.admit(ctx, "q")
		if err != nil {
			t.Errorf("queued admit failed: %v", err)
			close(admitted)
			return
		}
		close(admitted)
		tk2.release()
	}()

	select {
	case <-admitted:
		t.Fatal("second request admitted while the slot was held")
	case <-time.After(20 * time.Millisecond):
	}
	tk1.release()
	select {
	case <-admitted:
	case <-time.After(time.Second):
		t.Fatal("queued request never admitted after release")
	}
	wg.Wait()
}

func TestAdmitRespectsCallerDeath(t *testing.T) {
	adm, _ := testAdmission(t, TenantClass{
		Name: "dead", Deadline: time.Second, MaxConcurrent: 1, MaxQueue: 4, StartRung: RungGreedy,
	})
	tk1, err := adm.admit(context.Background(), "dead")
	if err != nil {
		t.Fatal(err)
	}
	defer tk1.release()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = adm.admit(ctx, "dead")
	var ce *guard.CancelError
	if !errors.As(err, &ce) || ce.Phase != "admit" {
		t.Fatalf("want a typed admit cancellation, got %v", err)
	}
	if !guard.Tripped(err) {
		t.Error("admit cancellation not classified as governance")
	}
}

func TestRetryAfterFromInflightDeadlines(t *testing.T) {
	adm, _ := testAdmission(t, TenantClass{
		Name: "ra", Deadline: 10 * time.Second, MaxConcurrent: 1, MaxQueue: 0, StartRung: RungGreedy,
	})
	now := time.Now()

	// Nothing in flight: the hint falls back to the class deadline.
	if got := adm.retryAfter("ra", now); got != 10*time.Second {
		t.Errorf("idle retryAfter = %v, want 10s", got)
	}

	// A holder 2.5s from its deadline tightens the hint to ⌈2.5s⌉ = 3s.
	tk, err := adm.admit(context.Background(), "ra")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), now.Add(2500*time.Millisecond))
	defer cancel()
	tk.setGuard(guard.New(ctx, guard.Limits{}))
	if got := adm.retryAfter("ra", now); got != 3*time.Second {
		t.Errorf("retryAfter = %v, want 3s from the in-flight deadline", got)
	}
	tk.release()

	// Released: back to the class fallback.
	if got := adm.retryAfter("ra", now); got != 10*time.Second {
		t.Errorf("post-release retryAfter = %v, want 10s", got)
	}
}

func TestRetryAfterNeverBelowOneSecond(t *testing.T) {
	adm, _ := testAdmission(t, TenantClass{
		Name: "fast", Deadline: 100 * time.Millisecond, MaxConcurrent: 1, MaxQueue: 0, StartRung: RungGreedy,
	})
	// Retry-After is whole seconds; even a sub-second class clamps to 1.
	if got := adm.retryAfter("fast", time.Now()); got < time.Second {
		t.Errorf("retryAfter = %v, want ≥ 1s", got)
	}
}

// TestRetryAfterMonotoneAsDeadlinesApproach pins the shed hint's shape:
// with fixed in-flight holders, the hint never grows as wall-clock time
// advances toward their deadlines, and never drops below one second.
func TestRetryAfterMonotoneAsDeadlinesApproach(t *testing.T) {
	adm, _ := testAdmission(t, TenantClass{
		Name: "mono", Deadline: 10 * time.Second, MaxConcurrent: 2, MaxQueue: 0, StartRung: RungGreedy,
	})
	now := time.Now()
	for _, d := range []time.Duration{7 * time.Second, 4 * time.Second} {
		tk, err := adm.admit(context.Background(), "mono")
		if err != nil {
			t.Fatal(err)
		}
		defer tk.release()
		ctx, cancel := context.WithDeadline(context.Background(), now.Add(d))
		defer cancel()
		tk.setGuard(guard.New(ctx, guard.Limits{}))
	}

	// Advance a simulated clock in 500ms steps, staying inside the
	// nearest holder's deadline (past it, Remaining fails and the hint
	// falls back to the class deadline by design).
	prev := time.Duration(1<<63 - 1)
	for step := time.Duration(0); step <= 3500*time.Millisecond; step += 500 * time.Millisecond {
		got := adm.retryAfter("mono", now.Add(step))
		if got > prev {
			t.Errorf("retryAfter grew from %v to %v at +%v", prev, got, step)
		}
		if got < time.Second {
			t.Errorf("retryAfter %v below the 1s floor at +%v", got, step)
		}
		prev = got
	}
	if prev != time.Second {
		t.Errorf("final hint %v, want 1s with 500ms left on the nearest holder", prev)
	}
}

// TestDrainingRetryAfterStaysSane drives the HTTP surface: every refusal
// from a draining server carries a whole-second Retry-After ≥ 1.
func TestDrainingRetryAfterStaysSane(t *testing.T) {
	srv, doer, _ := newTestServer(t, Config{})
	srv.BeginDrain()
	for i := 0; i < 3; i++ {
		res, err := doer.Do(context.Background(), http.MethodPost, "/v1/query", mustBody(t, "standard", false, false))
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != http.StatusServiceUnavailable {
			t.Fatalf("draining status %d, want 503", res.Status)
		}
		secs, err := strconv.Atoi(res.RetryAfter)
		if err != nil || secs < 1 {
			t.Fatalf("draining Retry-After %q, want whole seconds ≥ 1", res.RetryAfter)
		}
	}
}
