package serve

import (
	"sync"
	"testing"

	"multijoin/internal/core"
	"multijoin/internal/obs"
	"multijoin/internal/strategy"
)

func fpOf(n uint64) core.Fingerprint { return core.Fingerprint{Shape: n, Stats: n} }

func TestPlanCacheLRUEviction(t *testing.T) {
	rec := obs.NewRecorder()
	pc := newPlanCache(2, rec)
	plan := cachedPlan{strategy: strategy.Leaf(0), rung: RungDP, cost: 1}

	pc.put(fpOf(1), plan)
	pc.put(fpOf(2), plan)
	pc.get(fpOf(1), false) // refresh 1 → 2 is now least recent
	pc.put(fpOf(3), plan)

	if _, ok := pc.get(fpOf(2), false); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if _, ok := pc.get(fpOf(1), false); !ok {
		t.Error("recently-used entry evicted")
	}
	if _, ok := pc.get(fpOf(3), false); !ok {
		t.Error("newest entry evicted")
	}
	if pc.len() != 2 {
		t.Errorf("len = %d, want 2", pc.len())
	}
	if rec.Counter("serve.cache.evict").Value() != 1 {
		t.Errorf("evict counter = %d, want 1", rec.Counter("serve.cache.evict").Value())
	}
}

func TestPlanCacheRefreshInPlace(t *testing.T) {
	pc := newPlanCache(2, nil)
	pc.put(fpOf(1), cachedPlan{strategy: strategy.Leaf(0), rung: RungGreedy, cost: 9})
	pc.put(fpOf(1), cachedPlan{strategy: strategy.Leaf(0), rung: RungDP, cost: 5})
	got, ok := pc.get(fpOf(1), false)
	if !ok || got.rung != RungDP || got.cost != 5 {
		t.Fatalf("refresh lost: %+v %v", got, ok)
	}
	if pc.len() != 1 {
		t.Errorf("len = %d after double put under one key", pc.len())
	}
}

func TestPlanCacheHitMissCounters(t *testing.T) {
	rec := obs.NewRecorder()
	pc := newPlanCache(0, rec) // 0 selects the default capacity
	if _, ok := pc.get(fpOf(7), false); ok {
		t.Fatal("hit on empty cache")
	}
	pc.put(fpOf(7), cachedPlan{strategy: strategy.Leaf(0)})
	if _, ok := pc.get(fpOf(7), false); !ok {
		t.Fatal("miss after put")
	}
	if rec.Counter("serve.cache.hit").Value() != 1 || rec.Counter("serve.cache.miss").Value() != 1 {
		t.Errorf("hit/miss = %d/%d, want 1/1",
			rec.Counter("serve.cache.hit").Value(), rec.Counter("serve.cache.miss").Value())
	}
}

// TestPlanCacheConcurrentHitFillEvict hammers one small cache from many
// goroutines doing get-else-put over a key space four times the
// capacity. Run under -race in CI, it is the cache's concurrency-safety
// test; the counter identities are checked after the dust settles.
func TestPlanCacheConcurrentHitFillEvict(t *testing.T) {
	rec := obs.NewRecorder()
	pc := newPlanCache(8, rec)
	plan := cachedPlan{strategy: strategy.Leaf(0), rung: RungDP, cost: 1}

	const (
		workers = 8
		ops     = 500
		keys    = 32
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				fp := fpOf(uint64((w*ops + i) % keys))
				if _, ok := pc.get(fp, false); !ok {
					pc.put(fp, plan)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := pc.len(); got > 8 {
		t.Errorf("cache grew past capacity: len %d", got)
	}
	hits := rec.Counter("serve.cache.hit").Value()
	misses := rec.Counter("serve.cache.miss").Value()
	if hits+misses != workers*ops {
		t.Errorf("hit %d + miss %d ≠ %d lookups", hits, misses, workers*ops)
	}
	// 32 keys cycling through an 8-entry cache must evict; with capacity
	// respected, evictions are at least fills − capacity.
	if evicts := rec.Counter("serve.cache.evict").Value(); evicts == 0 {
		t.Error("no evictions despite 4× key pressure")
	}
}
