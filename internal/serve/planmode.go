package serve

import "fmt"

// The planning mode. By default a query obtains exact τ for every DP
// subproblem by executing joins through the evaluator memo — the
// paper-faithful mode, whose optimize phase costs as much as running
// the query. A request can instead opt into estimate-driven planning:
// the ladder starts directly at the estimate rung, the same subset DP
// runs against a statistics catalog without touching tuple data, and
// only the chosen plan is executed (when execution was requested at
// all). Cold-cache planning latency drops by orders of magnitude; the
// price is that the plan is optimal under the model, not under τ.

// PlanMode selects how /v1/query chooses its plan.
type PlanMode int

const (
	// PlanExact plans with exact τ through the evaluator memo (the
	// default; the estimate rung remains the ladder's last resort).
	PlanExact PlanMode = iota
	// PlanEstimate plans from estimate.Catalog — uniformity and
	// independence over cardinalities and distinct counts.
	PlanEstimate
	// PlanHistogram plans from estimate.HistogramCatalog — exact
	// per-attribute frequencies, independence across predicates.
	PlanHistogram
	planModeCount
)

// String names the mode as it appears in request bodies and flags.
func (m PlanMode) String() string {
	switch m {
	case PlanExact:
		return "exact"
	case PlanEstimate:
		return "estimate"
	case PlanHistogram:
		return "histogram"
	}
	return fmt.Sprintf("PlanMode(%d)", int(m))
}

// ParsePlanMode resolves a mode from a request body; the empty string
// selects PlanExact so existing clients are untouched.
func ParsePlanMode(name string) (PlanMode, error) {
	if name == "" {
		return PlanExact, nil
	}
	for m := PlanExact; m < planModeCount; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown plan mode %q (want exact|estimate|histogram)", name)
}
