package hypergraph

import (
	"sort"

	"multijoin/internal/relation"
)

// This file implements the acyclicity notions used in the paper's
// Section 5 (Discussion): α-acyclicity via GYO ear reduction, join trees
// for α-acyclic schemes (Bernstein/Goodman maximal-spanning-tree
// construction), and Fagin's γ-acyclicity by direct γ-cycle search.

// AlphaAcyclic reports whether the database scheme is α-acyclic, using
// the GYO (Graham / Yu–Özsoyoğlu) ear-reduction algorithm: repeatedly
// remove a scheme that is an "ear" — one whose attributes are either
// exclusive to it or entirely contained in some other remaining scheme —
// until no schemes remain (acyclic) or no ear exists (cyclic).
func (g *Graph) AlphaAcyclic() bool {
	return g.gyoReducible(g.All())
}

// AlphaAcyclicSub reports whether the restriction of the scheme to the
// subset s is α-acyclic.
func (g *Graph) AlphaAcyclicSub(s Set) bool { return g.gyoReducible(s) }

// AcyclicComponents reports whether every connected component of the
// scheme is α-acyclic — the admission test for the component-wise
// Yannakakis fast path (a join tree exists for each component). It is
// scheme-only, so catalogs and plan caches can run it without touching
// tuple data. The empty scheme has no fast path and reports false.
func (g *Graph) AcyclicComponents() bool {
	if g.Len() == 0 {
		return false
	}
	for _, comp := range g.Components(g.All()) {
		if !g.AlphaAcyclicSub(comp) {
			return false
		}
	}
	return true
}

func (g *Graph) gyoReducible(s Set) bool {
	remaining := s.Indexes()
	for len(remaining) > 1 {
		earIdx := -1
		for pos, i := range remaining {
			if g.isEar(i, remaining) {
				earIdx = pos
				break
			}
		}
		if earIdx == -1 {
			return false
		}
		remaining = append(remaining[:earIdx], remaining[earIdx+1:]...)
	}
	return true
}

// isEar reports whether scheme i is an ear with respect to the remaining
// schemes: the attributes of i shared with any other remaining scheme are
// all contained in a single other remaining scheme ("the witness").
func (g *Graph) isEar(i int, remaining []int) bool {
	// Attributes of i shared with at least one other remaining scheme.
	var shared relation.Schema
	for _, j := range remaining {
		if j == i {
			continue
		}
		shared = shared.Union(g.schemes[i].Intersect(g.schemes[j]))
	}
	if shared.Empty() {
		return true // all attributes exclusive: i is an isolated ear
	}
	for _, j := range remaining {
		if j == i {
			continue
		}
		if shared.SubsetOf(g.schemes[j]) {
			return true
		}
	}
	return false
}

// JoinTreeEdge is an undirected edge of a join tree between scheme
// indexes A and B.
type JoinTreeEdge struct{ A, B int }

// JoinTree computes a join tree (qual tree) for the database scheme if it
// is α-acyclic and connected: a tree on the scheme indexes such that, for
// every attribute, the schemes containing it induce a subtree. It returns
// the edges and true, or nil and false when the scheme is cyclic or
// unconnected.
//
// Construction: a maximal-weight spanning tree of the intersection graph,
// with edge weight |Ri ∩ Rj| (Bernstein–Goodman). The result is a join
// tree iff the scheme is α-acyclic; we verify the subtree property
// explicitly rather than trusting the weight argument.
func (g *Graph) JoinTree() ([]JoinTreeEdge, bool) {
	n := len(g.schemes)
	if n == 0 {
		return nil, false
	}
	if n == 1 {
		return []JoinTreeEdge{}, true
	}
	if !g.Connected(g.All()) {
		return nil, false
	}

	type cand struct {
		w    int
		a, b int
	}
	var cands []cand
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w := g.schemes[i].Intersect(g.schemes[j]).Len()
			if w > 0 {
				cands = append(cands, cand{w, i, j})
			}
		}
	}
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].w != cands[y].w {
			return cands[x].w > cands[y].w
		}
		if cands[x].a != cands[y].a {
			return cands[x].a < cands[y].a
		}
		return cands[x].b < cands[y].b
	})

	// Kruskal.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var edges []JoinTreeEdge
	for _, c := range cands {
		ra, rb := find(c.a), find(c.b)
		if ra != rb {
			parent[ra] = rb
			edges = append(edges, JoinTreeEdge{c.a, c.b})
		}
	}
	if len(edges) != n-1 {
		return nil, false
	}
	if !g.verifyJoinTree(edges) {
		return nil, false
	}
	return edges, true
}

// verifyJoinTree checks the defining property: for each attribute, the
// set of schemes containing it induces a connected subtree.
func (g *Graph) verifyJoinTree(edges []JoinTreeEdge) bool {
	n := len(g.schemes)
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	attrs := relation.UnionSchemas(g.schemes)
	for _, a := range attrs.Attrs() {
		var holders Set
		for i, sch := range g.schemes {
			if sch.Contains(a) {
				holders = holders.Add(i)
			}
		}
		if holders.Len() <= 1 {
			continue
		}
		// BFS within holders along tree edges.
		seed := holders.First()
		seen := Singleton(seed)
		queue := []int{seed}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if holders.Has(nb) && !seen.Has(nb) {
					seen = seen.Add(nb)
					queue = append(queue, nb)
				}
			}
		}
		if seen != holders {
			return false
		}
	}
	return true
}

// GammaAcyclic reports whether the database scheme is γ-acyclic in
// Fagin's sense: it contains no γ-cycle. A γ-cycle is a sequence
//
//	(S1, x1, S2, x2, …, Sm, xm, S1), m ≥ 3,
//
// of distinct edges Si and distinct attributes xi with xi ∈ Si ∩ Si+1,
// such that for 1 ≤ i ≤ m−1, xi belongs to *no other* edge of the cycle
// (xm is exempt and may appear in other edges of the cycle).
//
// Schemes in this paper are small (the strategy space is exponential long
// before γ-cycle search is), so a direct DFS over candidate sequences is
// the right tool: it is faithful to the definition and easy to validate.
func (g *Graph) GammaAcyclic() bool {
	n := len(g.schemes)
	if n < 3 {
		return true
	}
	// attrsOf[i][j] = attributes shared by schemes i and j.
	inter := make([][]relation.Schema, n)
	for i := range inter {
		inter[i] = make([]relation.Schema, n)
		for j := 0; j < n; j++ {
			if i != j {
				inter[i][j] = g.schemes[i].Intersect(g.schemes[j])
			}
		}
	}

	// DFS over sequences of (edge, attr) pairs starting at each edge.
	// State: start edge s0, current edge, used edge set, chosen attrs.
	var attrsUsed []relation.Attr
	var edgesUsed []int

	attrInUse := func(a relation.Attr) bool {
		for _, u := range attrsUsed {
			if u == a {
				return true
			}
		}
		return false
	}

	// closesCycle checks the full γ-cycle property for the candidate
	// sequence edgesUsed + final attribute back to edgesUsed[0].
	check := func(finalAttr relation.Attr) bool {
		m := len(edgesUsed)
		if m < 3 {
			return false
		}
		attrs := append(append([]relation.Attr{}, attrsUsed...), finalAttr)
		// For i in [0, m-2] (i.e. x1..x_{m-1}): xi in no other edge of the
		// cycle than Si, Si+1.
		for i := 0; i < m-1; i++ {
			for j, e := range edgesUsed {
				if j == i || j == (i+1)%m {
					continue
				}
				if g.schemes[e].Contains(attrs[i]) {
					return false
				}
			}
		}
		return true
	}

	var dfs func(cur int) bool
	dfs = func(cur int) bool {
		start := edgesUsed[0]
		// Try to close the cycle back to start.
		if len(edgesUsed) >= 3 {
			for _, a := range inter[cur][start].Attrs() {
				if attrInUse(a) {
					continue
				}
				if check(a) {
					return true
				}
			}
		}
		// Extend to a new edge.
		for next := 0; next < n; next++ {
			used := false
			for _, e := range edgesUsed {
				if e == next {
					used = true
					break
				}
			}
			if used {
				continue
			}
			for _, a := range inter[cur][next].Attrs() {
				if attrInUse(a) {
					continue
				}
				attrsUsed = append(attrsUsed, a)
				edgesUsed = append(edgesUsed, next)
				if dfs(next) {
					return true
				}
				attrsUsed = attrsUsed[:len(attrsUsed)-1]
				edgesUsed = edgesUsed[:len(edgesUsed)-1]
			}
		}
		return false
	}

	for s0 := 0; s0 < n; s0++ {
		edgesUsed = []int{s0}
		attrsUsed = nil
		if dfs(s0) {
			return false
		}
	}
	return true
}

// BetaAcyclic reports whether the database scheme is β-acyclic in
// Fagin's sense: every subset of its relation schemes is α-acyclic.
// β-acyclicity sits strictly between γ and α (γ ⟹ β ⟹ α); the classic
// separators are {AB, BC, ABC} (β-acyclic but γ-cyclic) and the covered
// triangle {AB, BC, CA, ABC} (α-acyclic but β-cyclic, since the subset
// {AB, BC, CA} is a pure cycle). Decided by running GYO on every subset —
// exponential, like everything else that quantifies over subsets here.
func (g *Graph) BetaAcyclic() bool {
	ok := true
	g.All().Subsets(func(s Set) bool {
		if !g.gyoReducible(s) {
			ok = false
			return false
		}
		return true
	})
	return ok
}
