package hypergraph

import (
	"testing"
)

func TestEnumerateJoinTreesChain(t *testing.T) {
	// A chain has exactly one join tree: the chain itself.
	g := graphOf("AB", "BC", "CD")
	count := 0
	g.EnumerateJoinTrees(func(edges []JoinTreeEdge) bool {
		count++
		if len(edges) != 2 {
			t.Fatalf("join tree with %d edges", len(edges))
		}
		return true
	})
	if count != 1 {
		t.Fatalf("chain has %d join trees, want 1", count)
	}
}

func TestEnumerateJoinTreesStar(t *testing.T) {
	// Star {XA, XB, XC}: every spanning tree of the triangle satisfies
	// the subtree property for the hub X... check against brute count.
	g := graphOf("XA", "XB", "XC")
	count := 0
	g.EnumerateJoinTrees(func(edges []JoinTreeEdge) bool {
		count++
		return true
	})
	// All three spanning trees of K3 are join trees here (X is
	// everywhere; A, B, C are private).
	if count != 3 {
		t.Fatalf("star has %d join trees, want 3", count)
	}
}

func TestEnumerateJoinTreesTriangleNone(t *testing.T) {
	g := graphOf("AB", "BC", "CA")
	count := 0
	g.EnumerateJoinTrees(func([]JoinTreeEdge) bool {
		count++
		return true
	})
	if count != 0 {
		t.Fatalf("α-cyclic triangle has %d join trees, want 0", count)
	}
}

func TestEnumerateJoinTreesEarlyStop(t *testing.T) {
	g := graphOf("XA", "XB", "XC")
	count := 0
	g.EnumerateJoinTrees(func([]JoinTreeEdge) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestInducesSubtree(t *testing.T) {
	edges := []JoinTreeEdge{{0, 1}, {1, 2}} // path 0-1-2
	if !InducesSubtree(edges, Set(0b011)) || !InducesSubtree(edges, Set(0b110)) {
		t.Fatal("adjacent pairs induce subtrees")
	}
	if InducesSubtree(edges, Set(0b101)) {
		t.Fatal("{0,2} is disconnected in the path")
	}
	if !InducesSubtree(edges, Set(0b111)) {
		t.Fatal("the whole tree is a subtree")
	}
	if !InducesSubtree(edges, Singleton(2)) {
		t.Fatal("singletons induce subtrees")
	}
	if InducesSubtree(edges, 0) {
		t.Fatal("the empty set does not")
	}
}

func TestJTConnectedClassicWitness(t *testing.T) {
	// The paper's remark: E1 and E2 may share an attribute yet not be
	// linked in the join-tree sense. With D = {AB, BC, ABC} the unique
	// join tree is AB—ABC—BC, so {AB, BC} shares B but is NOT join-tree
	// connected.
	g := graphOf("AB", "BC", "ABC")
	trees := 0
	g.EnumerateJoinTrees(func([]JoinTreeEdge) bool { trees++; return true })
	if trees != 1 {
		t.Fatalf("{AB,BC,ABC} has %d join trees, want 1", trees)
	}
	abBC := Set(0b011) // {AB, BC}
	if g.JTConnected(abBC) {
		t.Fatal("{AB, BC} must not be join-tree connected")
	}
	if !g.Connected(abBC) {
		t.Fatal("yet it is connected in the ordinary sense (shares B)")
	}
	if !g.JTConnected(Set(0b101)) || !g.JTConnected(Set(0b110)) {
		t.Fatal("{AB,ABC} and {BC,ABC} are join-tree connected")
	}
	if !g.JTConnected(g.All()) {
		t.Fatal("the full scheme is join-tree connected")
	}
}

func TestJTLinked(t *testing.T) {
	g := graphOf("AB", "BC", "ABC")
	// {AB} and {BC} are still JT-linked: F1={AB}, F2={BC} union is not
	// jt-connected, but the definition quantifies over subsets of the
	// *arguments*; with singleton arguments the only choice fails, so
	// they are NOT linked.
	if g.JTLinked(Singleton(0), Singleton(1)) {
		t.Fatal("{AB} and {BC} are not JT-linked")
	}
	if !g.JTLinked(Singleton(0), Singleton(2)) {
		t.Fatal("{AB} and {ABC} are JT-linked")
	}
	// With E2 = {BC, ABC}, choosing F2 = {ABC} links to {AB}.
	if !g.JTLinked(Singleton(0), Set(0b110)) {
		t.Fatal("{AB} and {BC,ABC} are JT-linked via ABC")
	}
	if g.JTLinked(0, Singleton(1)) {
		t.Fatal("empty sets are not linked")
	}
}

func TestJTConnectedOnChainMatchesIntervals(t *testing.T) {
	g := graphOf("AB", "BC", "CD")
	// Chain: the unique join tree is the chain, so jt-connected subsets
	// are exactly the intervals — same as ordinary connectedness here.
	g.All().Subsets(func(s Set) bool {
		if g.JTConnected(s) != g.Connected(s) {
			t.Fatalf("chain: JTConnected(%v)=%v but Connected=%v", s, g.JTConnected(s), g.Connected(s))
		}
		return true
	})
}
