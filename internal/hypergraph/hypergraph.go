package hypergraph

import (
	"multijoin/internal/relation"
)

// Graph is a database scheme viewed as a hypergraph: the relation schemes
// are nodes, and two nodes are adjacent ("linked") iff their schemes
// share an attribute. A Graph precomputes the pairwise adjacency so the
// exponential subset queries issued by the condition checkers and
// optimizers are O(|subset|) bit operations.
type Graph struct {
	schemes []relation.Schema
	// adj[i] is the set of scheme indexes linked to scheme i (excluding i
	// itself unless a scheme repeats attributes with itself, which it
	// trivially does; we exclude i for cleanliness).
	adj []Set
}

// New builds a Graph over the given relation schemes.
func New(schemes []relation.Schema) *Graph {
	if len(schemes) > MaxRelations {
		panic("hypergraph: too many relation schemes")
	}
	g := &Graph{
		schemes: schemes,
		adj:     make([]Set, len(schemes)),
	}
	for i := range schemes {
		for j := i + 1; j < len(schemes); j++ {
			if schemes[i].Overlaps(schemes[j]) {
				g.adj[i] = g.adj[i].Add(j)
				g.adj[j] = g.adj[j].Add(i)
			}
		}
	}
	return g
}

// Len returns the number of relation schemes.
func (g *Graph) Len() int { return len(g.schemes) }

// Schemes returns the underlying relation schemes. The caller must not
// modify the returned slice.
func (g *Graph) Schemes() []relation.Schema { return g.schemes }

// Scheme returns the i-th relation scheme.
func (g *Graph) Scheme(i int) relation.Schema { return g.schemes[i] }

// All returns the full set of scheme indexes.
func (g *Graph) All() Set { return Full(len(g.schemes)) }

// Attrs returns ∪D' for the sub-scheme selected by s: the union of the
// attributes of the selected relation schemes.
func (g *Graph) Attrs(s Set) relation.Schema {
	var out relation.Schema
	for _, i := range s.Indexes() {
		out = out.Union(g.schemes[i])
	}
	return out
}

// Neighbors returns the set of scheme indexes linked to any scheme in s,
// excluding s itself.
func (g *Graph) Neighbors(s Set) Set {
	var out Set
	for _, i := range s.Indexes() {
		out |= g.adj[i]
	}
	return out &^ s
}

// Linked reports whether sub-schemes a and b are linked: (∪a) ∩ (∪b) ≠ ∅.
// Note the paper's definition is about shared *attributes*, which for
// distinct schemes coincides with pairwise adjacency between some member
// of a and some member of b.
func (g *Graph) Linked(a, b Set) bool {
	for _, i := range a.Indexes() {
		if g.adj[i]&b != 0 {
			return true
		}
	}
	return false
}

// Connected reports whether the sub-scheme s is connected: it cannot be
// written as the union of two nonempty parts not linked to each other.
// The empty set is vacuously unconnected; a singleton is connected.
func (g *Graph) Connected(s Set) bool {
	if s == 0 {
		return false
	}
	return g.componentOf(s.First(), s) == s
}

// componentOf returns the connected component of seed within the
// restriction of the graph to universe.
func (g *Graph) componentOf(seed int, universe Set) Set {
	comp := Singleton(seed)
	frontier := comp
	for frontier != 0 {
		var next Set
		for _, i := range frontier.Indexes() {
			next |= g.adj[i] & universe
		}
		frontier = next &^ comp
		comp |= frontier
	}
	return comp
}

// Components returns the connected components of the sub-scheme s, in
// order of their smallest member.
func (g *Graph) Components(s Set) []Set {
	var out []Set
	for rest := s; rest != 0; {
		c := g.componentOf(rest.First(), rest)
		out = append(out, c)
		rest &^= c
	}
	return out
}

// ComponentCount returns comp(s): the number of connected components of
// the sub-scheme s.
func (g *Graph) ComponentCount(s Set) int {
	n := 0
	for rest := s; rest != 0; {
		rest &^= g.componentOf(rest.First(), rest)
		n++
	}
	return n
}

// ConnectedSubsets returns every nonempty connected subset of s. The
// result is exponential in |s|; callers are the condition checkers and
// tests, which only use small schemes.
func (g *Graph) ConnectedSubsets(s Set) []Set {
	var out []Set
	s.Subsets(func(t Set) bool {
		if g.Connected(t) {
			out = append(out, t)
		}
		return true
	})
	return out
}

// ConnectedContaining calls fn over connected subsets of universe that
// contain seed, by breadth-first growth. Used by enumeration helpers.
func (g *Graph) ConnectedContaining(universe Set, seed int, fn func(Set) bool) {
	universe = universe.Add(seed)
	g.ConnectedSubsetsOf(universe, func(t Set) bool {
		if t.Has(seed) {
			return fn(t)
		}
		return true
	})
}

// ConnectedSubsetsOf calls fn for every nonempty connected subset of
// universe, stopping early if fn returns false.
func (g *Graph) ConnectedSubsetsOf(universe Set, fn func(Set) bool) {
	universe.Subsets(func(t Set) bool {
		if g.Connected(t) {
			return fn(t)
		}
		return true
	})
}

// ConnectedContainingSeed calls fn for every connected subset of
// universe that contains seed (which must be in universe), each exactly
// once, stopping early when fn returns false. The enumeration is
// output-sensitive (the classic connected-subgraph expansion with a
// forbidden set), so sparse schemes — chains, trees — pay polynomially
// in the number of connected subsets rather than 2^|universe|.
func (g *Graph) ConnectedContainingSeed(universe Set, seed int, fn func(Set) bool) {
	if !universe.Has(seed) {
		return
	}
	var rec func(cur, forbidden Set) bool
	rec = func(cur, forbidden Set) bool {
		if !fn(cur) {
			return false
		}
		ext := g.Neighbors(cur).Intersect(universe).Minus(forbidden)
		var processed Set
		for t := ext; t != 0; {
			v := t.First()
			t = t.Remove(v)
			if !rec(cur.Add(v), forbidden.Union(processed)) {
				return false
			}
			processed = processed.Add(v)
		}
		return true
	}
	rec(Singleton(seed), 0)
}

// ConnectedSplits calls fn for every split of the connected set s into
// two connected nonempty parts (a, b) with a ∪ b = s, a ∩ b = ∅ and a
// containing s's smallest element (so each unordered split is reported
// once). These are exactly the Cartesian-product-free root steps for s —
// the csg/cmp pairs of join-order enumeration.
func (g *Graph) ConnectedSplits(s Set, fn func(a, b Set) bool) {
	if s.Len() < 2 || !g.Connected(s) {
		return
	}
	g.ConnectedContainingSeed(s, s.First(), func(a Set) bool {
		if a == s {
			return true
		}
		b := s.Minus(a)
		if g.Connected(b) {
			return fn(a, b)
		}
		return true
	})
}
