package hypergraph

// This file implements the Section 5 redefinition of connectedness for
// α-acyclic schemes: a subset E of D is *join-tree connected* iff there
// is a join tree for D in which E induces a subtree, and E1 is *linked*
// to E2 iff F1 ∪ F2 is join-tree connected for some F1 ⊆ E1, F2 ⊆ E2.
// Under these definitions every α-acyclic pairwise-consistent database
// satisfies C4. Note the paper's remark: two subsets may share an
// attribute yet not be linked in this sense (see the tests for the
// classic {AB, BC, ABC} witness).
//
// Join-tree enumeration is exponential; these functions serve the
// experiments and tests on small schemes, like everything else that
// quantifies over the strategy space.

// InducesSubtree reports whether the subset s induces a connected
// subtree of the given join tree (edges over scheme indexes).
func InducesSubtree(edges []JoinTreeEdge, s Set) bool {
	if s.Empty() {
		return false
	}
	if s.Len() == 1 {
		return true
	}
	adj := map[int][]int{}
	for _, e := range edges {
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
	}
	seed := s.First()
	seen := Singleton(seed)
	queue := []int{seed}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if s.Has(nb) && !seen.Has(nb) {
				seen = seen.Add(nb)
				queue = append(queue, nb)
			}
		}
	}
	return seen == s
}

// EnumerateJoinTrees calls fn for every join tree of the database scheme
// (every spanning tree of the overlap graph satisfying the subtree
// property for each attribute), stopping early when fn returns false.
// The scheme must be connected; otherwise no tree is produced.
func (g *Graph) EnumerateJoinTrees(fn func([]JoinTreeEdge) bool) {
	n := len(g.schemes)
	if n == 0 || !g.Connected(g.All()) {
		return
	}
	if n == 1 {
		fn([]JoinTreeEdge{})
		return
	}
	// Candidate edges: linked scheme pairs.
	var cands []JoinTreeEdge
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.schemes[i].Overlaps(g.schemes[j]) {
				cands = append(cands, JoinTreeEdge{i, j})
			}
		}
	}
	chosen := make([]JoinTreeEdge, 0, n-1)
	// Union-find over a recursive chooser: pick or skip each candidate,
	// pruning when a cycle would form or too few edges remain.
	parent := make([]int, n)
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			x = parent[x]
		}
		return x
	}
	stop := false
	var rec func(idx int)
	rec = func(idx int) {
		if stop {
			return
		}
		if len(chosen) == n-1 {
			if g.verifyJoinTree(chosen) {
				tree := make([]JoinTreeEdge, len(chosen))
				copy(tree, chosen)
				if !fn(tree) {
					stop = true
				}
			}
			return
		}
		if idx >= len(cands) || len(chosen)+(len(cands)-idx) < n-1 {
			return
		}
		e := cands[idx]
		ra, rb := find(e.A), find(e.B)
		if ra != rb {
			// Take the edge.
			parent[ra] = rb
			chosen = append(chosen, e)
			rec(idx + 1)
			chosen = chosen[:len(chosen)-1]
			parent[ra] = ra
		}
		// Skip the edge.
		rec(idx + 1)
	}
	for i := range parent {
		parent[i] = i
	}
	rec(0)
}

// JTConnected reports whether the subset s is connected in the Section 5
// sense: some join tree of the (α-acyclic, connected) scheme has s
// inducing a subtree. It returns false when the scheme has no join tree.
func (g *Graph) JTConnected(s Set) bool {
	if s.Empty() {
		return false
	}
	found := false
	g.EnumerateJoinTrees(func(edges []JoinTreeEdge) bool {
		if InducesSubtree(edges, s) {
			found = true
			return false
		}
		return true
	})
	return found
}

// JTLinked reports the Section 5 linkage: F1 ∪ F2 is join-tree connected
// for some nonempty F1 ⊆ a and F2 ⊆ b. (Quantifying over subsets is
// exponential, matching the definition.)
func (g *Graph) JTLinked(a, b Set) bool {
	if a.Empty() || b.Empty() {
		return false
	}
	linked := false
	a.Subsets(func(f1 Set) bool {
		b.Subsets(func(f2 Set) bool {
			if g.JTConnected(f1.Union(f2)) {
				linked = true
				return false
			}
			return true
		})
		return !linked
	})
	return linked
}
