package hypergraph

import (
	"testing"
	"testing/quick"
)

func TestSetBasics(t *testing.T) {
	s := Singleton(2).Add(5)
	if !s.Has(2) || !s.Has(5) || s.Has(3) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Remove(2) != Singleton(5) {
		t.Fatal("remove failed")
	}
	if s.First() != 2 {
		t.Fatalf("first = %d", s.First())
	}
	if got := s.String(); got != "{2,5}" {
		t.Fatalf("string = %q", got)
	}
}

func TestFull(t *testing.T) {
	if Full(0) != 0 {
		t.Fatal("Full(0) should be empty")
	}
	if Full(3) != 0b111 {
		t.Fatalf("Full(3) = %b", Full(3))
	}
	if Full(64) != ^Set(0) {
		t.Fatal("Full(64) should be all ones")
	}
}

func TestSetAlgebra(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := Set(a), Set(b)
		return x.Union(y) == Set(a|b) &&
			x.Intersect(y) == Set(a&b) &&
			x.Minus(y) == Set(a&^b) &&
			x.Disjoint(y) == (a&b == 0) &&
			x.SubsetOf(y) == (a&^b == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexesRoundTrip(t *testing.T) {
	f := func(a uint16) bool {
		var rebuilt Set
		for _, i := range Set(a).Indexes() {
			rebuilt = rebuilt.Add(i)
		}
		return rebuilt == Set(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubsetsEnumeratesAllNonempty(t *testing.T) {
	s := Set(0b10110)
	seen := map[Set]bool{}
	s.Subsets(func(t Set) bool {
		seen[t] = true
		return true
	})
	if len(seen) != (1<<3)-1 {
		t.Fatalf("enumerated %d subsets, want 7", len(seen))
	}
	for sub := range seen {
		if !sub.SubsetOf(s) || sub == 0 {
			t.Fatalf("bad subset %v", sub)
		}
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	Set(0b1111).Subsets(func(Set) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed, count = %d", count)
	}
}

func TestProperSubsetPairs(t *testing.T) {
	s := Set(0b1110) // {1,2,3}
	type pair struct{ a, b Set }
	var got []pair
	s.ProperSubsetPairs(func(a, b Set) bool {
		got = append(got, pair{a, b})
		return true
	})
	// 2^(n-1) − 1 = 3 unordered splits for n = 3.
	if len(got) != 3 {
		t.Fatalf("got %d splits, want 3", len(got))
	}
	for _, p := range got {
		if p.a|p.b != s || p.a&p.b != 0 || p.a == 0 || p.b == 0 {
			t.Fatalf("invalid split %v, %v", p.a, p.b)
		}
		if !p.a.Has(s.First()) {
			t.Fatalf("anchor not in first part: %v, %v", p.a, p.b)
		}
	}
}

func TestProperSubsetPairsCount(t *testing.T) {
	for n := 2; n <= 10; n++ {
		count := 0
		Full(n).ProperSubsetPairs(func(a, b Set) bool {
			count++
			return true
		})
		want := 1<<(n-1) - 1
		if count != want {
			t.Fatalf("n=%d: %d splits, want %d", n, count, want)
		}
	}
}

func TestProperSubsetPairsSmall(t *testing.T) {
	// Singleton and empty sets have no proper splits.
	for _, s := range []Set{0, 1, 0b1000} {
		called := false
		s.ProperSubsetPairs(func(a, b Set) bool { called = true; return true })
		if called {
			t.Fatalf("split reported for %v", s)
		}
	}
}

func TestFirstPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Set(0).First()
}
