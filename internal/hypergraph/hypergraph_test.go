package hypergraph

import (
	"testing"

	"multijoin/internal/relation"
)

func graphOf(schemes ...string) *Graph {
	out := make([]relation.Schema, len(schemes))
	for i, s := range schemes {
		out[i] = relation.SchemaFromString(s)
	}
	return New(out)
}

func TestLinkedPaperExamples(t *testing.T) {
	// {ABC, BE, DF} is linked to {CG, GH} (via C), §2.
	g := graphOf("ABC", "BE", "DF", "CG", "GH")
	d1 := Set(0b00111) // ABC, BE, DF
	d2 := Set(0b11000) // CG, GH
	if !g.Linked(d1, d2) {
		t.Fatal("expected linked")
	}
	// {AB, BE, DF} is not linked to {CG, GH}.
	g2 := graphOf("AB", "BE", "DF", "CG", "GH")
	if g2.Linked(0b00111, 0b11000) {
		t.Fatal("expected not linked")
	}
}

func TestConnectedPaperExamples(t *testing.T) {
	// {ABC, BE, DF} is unconnected; {ABC, BE, AF, DF} is connected (§2).
	g := graphOf("ABC", "BE", "DF")
	if g.Connected(g.All()) {
		t.Fatal("{ABC,BE,DF} should be unconnected")
	}
	g2 := graphOf("ABC", "BE", "AF", "DF")
	if !g2.Connected(g2.All()) {
		t.Fatal("{ABC,BE,AF,DF} should be connected")
	}
}

func TestComponentsPaperExample(t *testing.T) {
	// Components of {ABC, BE, DF} are {ABC, BE} and {DF} (§2).
	g := graphOf("ABC", "BE", "DF")
	comps := g.Components(g.All())
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	if comps[0] != 0b011 || comps[1] != 0b100 {
		t.Fatalf("components = %v", comps)
	}
	if g.ComponentCount(g.All()) != 2 {
		t.Fatal("component count wrong")
	}
}

func TestUnionOfLinkedSchemesCanStayUnconnected(t *testing.T) {
	// {ABC, BE, DF} ∪ {CG, GH} remains unconnected although the parts are
	// linked (§2: DF is isolated).
	g := graphOf("ABC", "BE", "DF", "CG", "GH")
	if g.Connected(g.All()) {
		t.Fatal("expected unconnected")
	}
	if g.ComponentCount(g.All()) != 2 {
		t.Fatalf("count = %d, want 2", g.ComponentCount(g.All()))
	}
}

func TestSingletonConnected(t *testing.T) {
	g := graphOf("AB", "CD")
	if !g.Connected(Singleton(0)) || !g.Connected(Singleton(1)) {
		t.Fatal("singletons are connected")
	}
	if g.Connected(0) {
		t.Fatal("empty set is not connected")
	}
}

func TestAttrs(t *testing.T) {
	g := graphOf("AB", "BC", "DE")
	if got := g.Attrs(0b011).String(); got != "ABC" {
		t.Fatalf("attrs = %s", got)
	}
	if got := g.Attrs(g.All()).String(); got != "ABCDE" {
		t.Fatalf("attrs = %s", got)
	}
}

func TestNeighbors(t *testing.T) {
	g := graphOf("AB", "BC", "CD", "EF")
	if got := g.Neighbors(Singleton(1)); got != 0b0101 {
		t.Fatalf("neighbors of BC = %v", got)
	}
	if got := g.Neighbors(Singleton(3)); got != 0 {
		t.Fatalf("neighbors of EF = %v", got)
	}
}

func TestConnectedSubsetsChain(t *testing.T) {
	// Chain AB−BC−CD: connected subsets are intervals: 6 of them
	// ({0},{1},{2},{01},{12},{012}).
	g := graphOf("AB", "BC", "CD")
	subs := g.ConnectedSubsets(g.All())
	if len(subs) != 6 {
		t.Fatalf("got %d connected subsets, want 6", len(subs))
	}
}

func TestConnectedSubsetsClique(t *testing.T) {
	// Clique on shared attribute: all 2^3−1 = 7 nonempty subsets connect.
	g := graphOf("AX", "BX", "CX")
	if got := len(g.ConnectedSubsets(g.All())); got != 7 {
		t.Fatalf("got %d, want 7", got)
	}
}

func TestAlphaAcyclic(t *testing.T) {
	tests := []struct {
		name    string
		schemes []string
		want    bool
	}{
		{"chain", []string{"AB", "BC", "CD"}, true},
		{"star", []string{"AB", "AC", "AD"}, true},
		{"triangle", []string{"AB", "BC", "CA"}, false},
		{"triangle+cover", []string{"AB", "BC", "CA", "ABC"}, true},
		{"single", []string{"ABC"}, true},
		{"cycle4", []string{"AB", "BC", "CD", "DA"}, false},
		{"paper-ex3", []string{"GS", "SC", "CL"}, true},
		{"paper-ex5", []string{"MS", "SC", "CI", "ID"}, true},
		{"unconnected-acyclic", []string{"AB", "BC", "DE"}, true},
	}
	for _, tc := range tests {
		g := graphOf(tc.schemes...)
		if got := g.AlphaAcyclic(); got != tc.want {
			t.Errorf("%s: AlphaAcyclic = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestJoinTreeChain(t *testing.T) {
	g := graphOf("AB", "BC", "CD")
	edges, ok := g.JoinTree()
	if !ok {
		t.Fatal("expected join tree")
	}
	if len(edges) != 2 {
		t.Fatalf("got %d edges", len(edges))
	}
}

func TestJoinTreeCycleFails(t *testing.T) {
	g := graphOf("AB", "BC", "CA")
	if _, ok := g.JoinTree(); ok {
		t.Fatal("triangle must not admit a join tree")
	}
}

func TestJoinTreeUnconnectedFails(t *testing.T) {
	g := graphOf("AB", "CD")
	if _, ok := g.JoinTree(); ok {
		t.Fatal("unconnected scheme must not admit a join tree here")
	}
}

func TestJoinTreeSingle(t *testing.T) {
	g := graphOf("AB")
	edges, ok := g.JoinTree()
	if !ok || len(edges) != 0 {
		t.Fatalf("single scheme: %v, %v", edges, ok)
	}
}

func TestJoinTreeSubtreeProperty(t *testing.T) {
	g := graphOf("ABC", "BCD", "CDE", "AF")
	edges, ok := g.JoinTree()
	if !ok {
		t.Fatal("expected join tree")
	}
	if !g.verifyJoinTree(edges) {
		t.Fatal("verify failed on returned tree")
	}
}

func TestGammaAcyclic(t *testing.T) {
	tests := []struct {
		name    string
		schemes []string
		want    bool
	}{
		{"chain", []string{"AB", "BC", "CD"}, true},
		{"star", []string{"XA", "XB", "XC"}, true},
		{"triangle", []string{"AB", "BC", "CA"}, false},
		// α-acyclic but γ-cyclic: the classic {AB, BC, ABC}.
		{"alpha-not-gamma", []string{"AB", "BC", "ABC"}, false},
		{"two-schemes", []string{"AB", "BC"}, true},
		{"single", []string{"ABC"}, true},
		{"cycle4", []string{"AB", "BC", "CD", "DA"}, false},
		{"unconnected", []string{"AB", "BC", "DE"}, true},
	}
	for _, tc := range tests {
		g := graphOf(tc.schemes...)
		if got := g.GammaAcyclic(); got != tc.want {
			t.Errorf("%s: GammaAcyclic = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestGammaImpliesAlpha(t *testing.T) {
	// Fagin: γ-acyclic ⟹ α-acyclic. Spot-check over a catalogue of
	// schemes (both acyclic and cyclic ones).
	catalogue := [][]string{
		{"AB", "BC", "CD"}, {"AB", "BC", "CA"}, {"AB", "BC", "ABC"},
		{"XA", "XB", "XC"}, {"AB", "BC", "CD", "DA"}, {"ABC", "BCD", "CDE"},
		{"AB", "CD", "EF"}, {"ABC", "CDE", "EFA"},
	}
	for _, schemes := range catalogue {
		g := graphOf(schemes...)
		if g.GammaAcyclic() && !g.AlphaAcyclic() {
			t.Errorf("%v: γ-acyclic but not α-acyclic", schemes)
		}
	}
}

func TestConnectedContaining(t *testing.T) {
	g := graphOf("AB", "BC", "CD")
	var count int
	g.ConnectedContaining(g.All(), 1, func(s Set) bool {
		if !s.Has(1) || !g.Connected(s) {
			t.Fatalf("bad subset %v", s)
		}
		count++
		return true
	})
	// Intervals containing index 1 in a 3-chain: {1},{01},{12},{012} = 4.
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
}

func TestNewPanicsOnTooMany(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(make([]relation.Schema, 65))
}

func TestConnectedContainingSeedMatchesBruteForce(t *testing.T) {
	g := graphOf("AB", "BC", "CD", "CE", "FG")
	for seed := 0; seed < g.Len(); seed++ {
		want := map[Set]bool{}
		g.All().Subsets(func(s Set) bool {
			if s.Has(seed) && g.Connected(s) {
				want[s] = true
			}
			return true
		})
		got := map[Set]bool{}
		g.ConnectedContainingSeed(g.All(), seed, func(s Set) bool {
			if got[s] {
				t.Fatalf("seed %d: duplicate subset %v", seed, s)
			}
			got[s] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d subsets, want %d", seed, len(got), len(want))
		}
		for s := range want {
			if !got[s] {
				t.Fatalf("seed %d: missing %v", seed, s)
			}
		}
	}
}

func TestConnectedContainingSeedEarlyStop(t *testing.T) {
	g := graphOf("AB", "BC", "CD")
	count := 0
	g.ConnectedContainingSeed(g.All(), 0, func(Set) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop failed: %d", count)
	}
}

func TestConnectedSplitsMatchesFilteredPairs(t *testing.T) {
	g := graphOf("AB", "BC", "CD", "DE")
	g.All().Subsets(func(s Set) bool {
		if !g.Connected(s) || s.Len() < 2 {
			return true
		}
		want := map[[2]Set]bool{}
		s.ProperSubsetPairs(func(a, b Set) bool {
			if g.Connected(a) && g.Connected(b) {
				want[[2]Set{a, b}] = true
			}
			return true
		})
		got := map[[2]Set]bool{}
		g.ConnectedSplits(s, func(a, b Set) bool {
			if got[[2]Set{a, b}] {
				t.Fatalf("duplicate split %v|%v of %v", a, b, s)
			}
			got[[2]Set{a, b}] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("splits of %v: %d, want %d", s, len(got), len(want))
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("missing split %v of %v", k, s)
			}
		}
		return true
	})
}

func TestConnectedSplitsOnUnconnectedOrSmall(t *testing.T) {
	g := graphOf("AB", "CD")
	called := false
	g.ConnectedSplits(g.All(), func(a, b Set) bool { called = true; return true })
	if called {
		t.Fatal("unconnected sets have no connected splits")
	}
	g2 := graphOf("AB", "BC")
	g2.ConnectedSplits(Singleton(0), func(a, b Set) bool { called = true; return true })
	if called {
		t.Fatal("singletons have no splits")
	}
}

func TestConnectedSplitsChainIsPolynomial(t *testing.T) {
	// A chain of k relations has exactly k−1 connected splits of the
	// full interval (cut points), not 2^(k−1)−1.
	schemes := make([]relation.Schema, 16)
	for i := range schemes {
		schemes[i] = relation.NewSchema(
			relation.Attr(rune('a'+i)), relation.Attr(rune('a'+i+1)))
	}
	g := New(schemes)
	count := 0
	g.ConnectedSplits(g.All(), func(a, b Set) bool {
		count++
		return true
	})
	if count != 15 {
		t.Fatalf("chain of 16 has %d connected splits, want 15", count)
	}
}

func TestBetaAcyclic(t *testing.T) {
	tests := []struct {
		name    string
		schemes []string
		want    bool
	}{
		{"chain", []string{"AB", "BC", "CD"}, true},
		{"star", []string{"XA", "XB", "XC"}, true},
		{"triangle", []string{"AB", "BC", "CA"}, false},
		// The classic separators of Fagin's hierarchy:
		{"beta-not-gamma", []string{"AB", "BC", "ABC"}, true},
		{"alpha-not-beta", []string{"AB", "BC", "CA", "ABC"}, false},
		{"single", []string{"ABC"}, true},
		{"unconnected", []string{"AB", "BC", "DE"}, true},
	}
	for _, tc := range tests {
		g := graphOf(tc.schemes...)
		if got := g.BetaAcyclic(); got != tc.want {
			t.Errorf("%s: BetaAcyclic = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestAcyclicityHierarchy(t *testing.T) {
	// Fagin: γ ⟹ β ⟹ α, with both inclusions strict (witnessed above).
	catalogue := [][]string{
		{"AB", "BC", "CD"}, {"AB", "BC", "CA"}, {"AB", "BC", "ABC"},
		{"AB", "BC", "CA", "ABC"}, {"XA", "XB", "XC"},
		{"ABC", "BCD", "CDE"}, {"AB", "CD", "EF"}, {"ABC", "CDE", "EFA"},
		{"AB", "BC", "CD", "DA"},
	}
	for _, schemes := range catalogue {
		g := graphOf(schemes...)
		gamma, beta, alpha := g.GammaAcyclic(), g.BetaAcyclic(), g.AlphaAcyclic()
		if gamma && !beta {
			t.Errorf("%v: γ-acyclic but not β-acyclic", schemes)
		}
		if beta && !alpha {
			t.Errorf("%v: β-acyclic but not α-acyclic", schemes)
		}
	}
}
