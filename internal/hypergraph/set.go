// Package hypergraph treats a database scheme D (a set of relation
// schemes) as a hypergraph, and implements the connectivity vocabulary of
// the paper's Section 2 — linked, disjoint, connected, components — plus
// the acyclicity machinery of Section 5 (GYO ear reduction, join trees,
// α- and γ-acyclicity).
//
// Subsets of D are represented as bitsets (Set); the i-th bit selects the
// i-th relation scheme of the database scheme under consideration. This
// makes the exponential subset enumerations needed by the condition
// checkers and the dynamic-programming optimizers cheap and allocation
// free.
package hypergraph

import (
	"math/bits"
	"strings"
)

// Set is a subset of a database scheme's relation schemes, as a bitmask
// over scheme indexes. Databases are limited to 64 relations, far above
// anything the exponential strategy space allows in practice.
type Set uint64

// MaxRelations is the largest database scheme size representable by Set.
const MaxRelations = 64

// Singleton returns the set containing only index i.
func Singleton(i int) Set { return Set(1) << uint(i) }

// Full returns the set {0, …, n−1}.
func Full(n int) Set {
	if n >= MaxRelations {
		if n == MaxRelations {
			return ^Set(0)
		}
		panic("hypergraph: too many relations")
	}
	return Set(1)<<uint(n) - 1
}

// Has reports whether index i is in the set.
func (s Set) Has(i int) bool { return s&(Set(1)<<uint(i)) != 0 }

// Add returns s ∪ {i}.
func (s Set) Add(i int) Set { return s | Set(1)<<uint(i) }

// Remove returns s − {i}.
func (s Set) Remove(i int) Set { return s &^ (Set(1) << uint(i)) }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s − t.
func (s Set) Minus(t Set) Set { return s &^ t }

// Disjoint reports whether s and t share no index. This is the paper's
// "D1 and D2 are disjoint" on database schemes.
func (s Set) Disjoint(t Set) bool { return s&t == 0 }

// SubsetOf reports whether s ⊆ t.
func (s Set) SubsetOf(t Set) bool { return s&^t == 0 }

// Empty reports whether the set has no elements.
func (s Set) Empty() bool { return s == 0 }

// Len returns the number of elements.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// Indexes returns the elements in increasing order.
func (s Set) Indexes() []int {
	out := make([]int, 0, s.Len())
	for t := s; t != 0; {
		i := bits.TrailingZeros64(uint64(t))
		out = append(out, i)
		t &= t - 1
	}
	return out
}

// First returns the smallest element; it panics on the empty set.
func (s Set) First() int {
	if s == 0 {
		panic("hypergraph: First of empty set")
	}
	return bits.TrailingZeros64(uint64(s))
}

// String renders the set as e.g. "{0,2,3}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, idx := range s.Indexes() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(itoa(idx))
	}
	b.WriteByte('}')
	return b.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Subsets calls fn for every nonempty subset of s, in increasing mask
// order. Enumeration stops early if fn returns false.
func (s Set) Subsets(fn func(Set) bool) {
	// Standard submask enumeration, ascending: iterate t from low to high
	// by stepping through ((t - s) & s).
	for t := Set(0); ; {
		t = (t - s) & s
		if t == 0 {
			return
		}
		if !fn(t) {
			return
		}
		if t == s {
			return
		}
	}
}

// ProperSubsetPairs calls fn for every unordered split of s into two
// nonempty disjoint parts (a, b) with a ∪ b = s. Each split is reported
// once, with the part containing s's smallest element first. Enumeration
// stops early if fn returns false.
//
// These splits are exactly the candidate root steps of a strategy for the
// database scheme s (condition (S3) of the paper).
func (s Set) ProperSubsetPairs(fn func(a, b Set) bool) {
	if s.Len() < 2 {
		return
	}
	anchor := Set(1) << uint(s.First())
	rest := s &^ anchor
	// Enumerate subsets t of rest to place alongside the anchor; the
	// other side is s − (anchor ∪ t), which is nonempty until t = rest.
	t := Set(0)
	for {
		a := anchor | t
		b := s &^ a
		if b == 0 {
			return
		}
		if !fn(a, b) {
			return
		}
		t = (t - rest) & rest
		if t == 0 {
			return
		}
	}
}
