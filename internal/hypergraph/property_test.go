package hypergraph

import (
	"math/rand"
	"testing"

	"multijoin/internal/relation"
)

// randomSchemes builds n random 2–3 attribute schemes over a small
// attribute universe (possibly unconnected, possibly cyclic).
func randomSchemes(rng *rand.Rand, n, universe int) []relation.Schema {
	out := make([]relation.Schema, n)
	for i := range out {
		attrs := []relation.Attr{relation.Attr(rune('a' + rng.Intn(universe)))}
		for len(attrs) < 2+rng.Intn(2) {
			attrs = append(attrs, relation.Attr(rune('a'+rng.Intn(universe))))
		}
		// A private attribute keeps schemes distinct.
		attrs = append(attrs, relation.Attr(rune('A'+i)))
		out[i] = relation.NewSchema(attrs...)
	}
	return out
}

func TestComponentsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 300; trial++ {
		g := New(randomSchemes(rng, 2+rng.Intn(6), 5))
		comps := g.Components(g.All())
		var union Set
		for i, c := range comps {
			if c.Empty() {
				t.Fatal("empty component")
			}
			if !union.Disjoint(c) {
				t.Fatal("components overlap")
			}
			if !g.Connected(c) {
				t.Fatal("component not connected")
			}
			// Not linked to the rest (the defining property).
			if g.Linked(c, g.All().Minus(c)) {
				t.Fatalf("component %d linked to the rest", i)
			}
			union = union.Union(c)
		}
		if union != g.All() {
			t.Fatal("components do not cover")
		}
		if len(comps) != g.ComponentCount(g.All()) {
			t.Fatal("count mismatch")
		}
	}
}

func TestLinkedSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 200; trial++ {
		g := New(randomSchemes(rng, 5, 4))
		for a := Set(1); a < Set(1<<5); a++ {
			b := Set(rng.Intn(1 << 5))
			if b.Empty() {
				continue
			}
			if g.Linked(a, b) != g.Linked(b, a) {
				t.Fatalf("Linked not symmetric for %v, %v", a, b)
			}
		}
	}
}

func TestLinkedMatchesAttributeIntersection(t *testing.T) {
	// Linked(a, b) iff (∪a) ∩ (∪b) ≠ ∅ for disjoint a, b — the paper's
	// definition, which the adjacency-based implementation must match.
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 200; trial++ {
		g := New(randomSchemes(rng, 5, 4))
		for i := 0; i < 30; i++ {
			a := Set(rng.Intn(1 << 5))
			b := Set(rng.Intn(1<<5)) &^ a
			if a.Empty() || b.Empty() {
				continue
			}
			want := g.Attrs(a).Overlaps(g.Attrs(b))
			if got := g.Linked(a, b); got != want {
				t.Fatalf("Linked(%v,%v)=%v, attribute test says %v", a, b, got, want)
			}
		}
	}
}

func TestConnectedSubsetsClosedUnderLinkedUnion(t *testing.T) {
	// If a and b are connected and linked, a ∪ b is connected.
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 100; trial++ {
		g := New(randomSchemes(rng, 6, 4))
		subs := g.ConnectedSubsets(g.All())
		for i := 0; i < 40; i++ {
			a := subs[rng.Intn(len(subs))]
			b := subs[rng.Intn(len(subs))]
			if !a.Disjoint(b) || !g.Linked(a, b) {
				continue
			}
			if !g.Connected(a.Union(b)) {
				t.Fatalf("union of linked connected %v, %v not connected", a, b)
			}
		}
	}
}

func TestConnectedMonotoneUnderComponentRestriction(t *testing.T) {
	// A connected subset lies within one component.
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 100; trial++ {
		g := New(randomSchemes(rng, 6, 3))
		comps := g.Components(g.All())
		g.All().Subsets(func(s Set) bool {
			if !g.Connected(s) {
				return true
			}
			inOne := false
			for _, c := range comps {
				if s.SubsetOf(c) {
					inOne = true
					break
				}
			}
			if !inOne {
				t.Fatalf("connected subset %v spans components", s)
			}
			return true
		})
	}
}

func TestGYOInvariantUnderPermutation(t *testing.T) {
	// α-acyclicity must not depend on the scheme order.
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 100; trial++ {
		schemes := randomSchemes(rng, 5, 4)
		want := New(schemes).AlphaAcyclic()
		perm := rng.Perm(len(schemes))
		shuffled := make([]relation.Schema, len(schemes))
		for i, p := range perm {
			shuffled[i] = schemes[p]
		}
		if got := New(shuffled).AlphaAcyclic(); got != want {
			t.Fatal("AlphaAcyclic depends on scheme order")
		}
	}
}

func TestJoinTreeExistsIffAlphaAcyclicConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 150; trial++ {
		g := New(randomSchemes(rng, 4+rng.Intn(3), 4))
		_, ok := g.JoinTree()
		want := g.AlphaAcyclic() && g.Connected(g.All())
		if ok != want {
			t.Fatalf("JoinTree existence %v, want %v (acyclic=%v connected=%v)",
				ok, want, g.AlphaAcyclic(), g.Connected(g.All()))
		}
	}
}
