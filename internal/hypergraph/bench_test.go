package hypergraph

import (
	"fmt"
	"testing"

	"multijoin/internal/relation"
)

func chainSchemes(n int) []relation.Schema {
	out := make([]relation.Schema, n)
	for i := range out {
		out[i] = relation.NewSchema(
			relation.Attr(fmt.Sprintf("A%d", i)),
			relation.Attr(fmt.Sprintf("A%d", i+1)))
	}
	return out
}

func starSchemes(n int) []relation.Schema {
	out := make([]relation.Schema, n)
	for i := range out {
		out[i] = relation.NewSchema("Hub", relation.Attr(fmt.Sprintf("A%d", i)))
	}
	return out
}

func BenchmarkConnected(b *testing.B) {
	g := New(chainSchemes(32))
	s := g.All()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Connected(s)
	}
}

func BenchmarkComponents(b *testing.B) {
	// Two chains side by side.
	schemes := append(chainSchemes(16), starSchemes(16)...)
	g := New(schemes)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Components(g.All())
	}
}

func BenchmarkConnectedSplits(b *testing.B) {
	// Chain: polynomial; star: exponential in n (all subsets connect) —
	// the shape-sensitivity the E-manyjoins experiment leans on.
	for _, tc := range []struct {
		name    string
		schemes []relation.Schema
	}{
		{"chain32", chainSchemes(32)},
		{"star16", starSchemes(16)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			g := New(tc.schemes)
			s := g.All()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				count := 0
				g.ConnectedSplits(s, func(a, bs Set) bool {
					count++
					return true
				})
			}
		})
	}
}

func BenchmarkGYO(b *testing.B) {
	g := New(chainSchemes(24))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.AlphaAcyclic()
	}
}

func BenchmarkGammaAcyclic(b *testing.B) {
	g := New(chainSchemes(12))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.GammaAcyclic()
	}
}

func BenchmarkJoinTree(b *testing.B) {
	g := New(chainSchemes(24))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := g.JoinTree(); !ok {
			b.Fatal("chain must have a join tree")
		}
	}
}
