package core

import (
	"math/rand"
	"testing"

	"multijoin/internal/conditions"
	"multijoin/internal/database"
	"multijoin/internal/gen"
	"multijoin/internal/optimizer"
	"multijoin/internal/paperex"
)

func hasTheorem(certs []Certificate, th Theorem) bool {
	for _, c := range certs {
		if c.Theorem == th {
			return true
		}
	}
	return false
}

func TestAnalyzeExample3(t *testing.T) {
	// C1 holds, C1′ fails: no Theorem 1 certificate — and indeed a
	// τ-optimum linear strategy uses a Cartesian product.
	an, err := Analyze(paperex.Example3())
	if err != nil {
		t.Fatal(err)
	}
	if !an.Profile.Holds(conditions.C1) || an.Profile.Holds(conditions.C1Strict) {
		t.Fatal("Example 3 profile wrong")
	}
	if hasTheorem(an.Certificates, Theorem1) {
		t.Fatal("Theorem 1 must not certify Example 3")
	}
	ev := database.NewEvaluator(paperex.Example3())
	if err := VerifyTheorem1Exhaustive(ev); err == nil {
		t.Fatal("Theorem 1's conclusion should fail on Example 3 (its very point)")
	}
}

func TestAnalyzeExample4(t *testing.T) {
	// C2 holds, C1 fails: no Theorem 2 certificate; conclusion fails.
	an, err := Analyze(paperex.Example4())
	if err != nil {
		t.Fatal(err)
	}
	if hasTheorem(an.Certificates, Theorem2) {
		t.Fatal("Theorem 2 must not certify Example 4")
	}
	ev := database.NewEvaluator(paperex.Example4())
	if err := VerifyTheorem2Exhaustive(ev); err == nil {
		t.Fatal("Theorem 2's conclusion should fail on Example 4")
	}
	// The restricted optimizer misses the optimum: the gap the paper
	// warns about.
	all, _ := an.Result(optimizer.SpaceAll)
	nocp, _ := an.Result(optimizer.SpaceNoCP)
	if !(all.Cost == 11 && nocp.Cost == 12) {
		t.Fatalf("gap wrong: all=%d nocp=%d, want 11 and 12", all.Cost, nocp.Cost)
	}
}

func TestAnalyzeExample5(t *testing.T) {
	// C1 ∧ C2 hold: Theorem 2 certifies no-CP search; C3 fails so
	// Theorem 3 does not certify, and its conclusion indeed fails.
	db := paperex.Example5()
	an, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	if !hasTheorem(an.Certificates, Theorem2) {
		t.Fatal("Theorem 2 should certify Example 5")
	}
	if hasTheorem(an.Certificates, Theorem3) {
		t.Fatal("Theorem 3 must not certify Example 5")
	}
	if err := VerifyCertificates(an); err != nil {
		t.Fatalf("certificates must hold: %v", err)
	}
	ev := database.NewEvaluator(db)
	if err := VerifyTheorem3Exhaustive(ev); err == nil {
		t.Fatal("Theorem 3's conclusion should fail on Example 5")
	}
	// Quantify the gap: linear-no-CP (System R) misses the optimum.
	all, _ := an.Result(optimizer.SpaceAll)
	lnc, _ := an.Result(optimizer.SpaceLinearNoCP)
	if lnc.Cost <= all.Cost {
		t.Fatalf("expected a linear gap: all=%d linear-no-CP=%d", all.Cost, lnc.Cost)
	}
}

func TestAnalyzeDiagonalCertifiesTheorem3(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		db := gen.Diagonal(rng, gen.Schemes(gen.Chain, 4), 8, 0.6)
		an, err := Analyze(db)
		if err != nil {
			t.Fatal(err)
		}
		if !hasTheorem(an.Certificates, Theorem3) {
			t.Fatalf("trial %d: superkey joins must certify Theorem 3; profile %+v",
				trial, an.Profile.Reports)
		}
		if err := VerifyCertificates(an); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCertificatesAlwaysHoldOnRandomDatabases(t *testing.T) {
	// The decisive property test: whatever Certify claims must be borne
	// out by exhaustive optimization — on *any* database. Violations
	// would falsify the implementation (or the theorems).
	rng := rand.New(rand.NewSource(22))
	fired := 0
	for trial := 0; trial < 120; trial++ {
		var db *database.Database
		switch trial % 3 {
		case 0:
			db = gen.Uniform(rng, gen.Schemes(gen.Chain, 4), 4, 3)
		case 1:
			db = gen.Diagonal(rng, gen.RandomConnectedSchemes(rng, 4, 0.3), 6, 0.5)
		default:
			db = gen.Zipf(rng, gen.Schemes(gen.Star, 4), 6, 6, 1.5)
		}
		ev := database.NewEvaluator(db)
		if ev.Result().Empty() {
			continue
		}
		an, err := Analyze(db)
		if err != nil {
			t.Fatal(err)
		}
		if len(an.Certificates) > 0 {
			fired++
		}
		if err := VerifyCertificates(an); err != nil {
			t.Fatalf("trial %d: %v\n%v", trial, err, db)
		}
		// Exhaustive forms of the theorems, where certified.
		for _, c := range an.Certificates {
			var verr error
			switch c.Theorem {
			case Theorem1:
				verr = VerifyTheorem1Exhaustive(ev)
			case Theorem2:
				verr = VerifyTheorem2Exhaustive(ev)
			case Theorem3:
				verr = VerifyTheorem3Exhaustive(ev)
			}
			if verr != nil {
				t.Fatalf("trial %d: %v\n%v", trial, verr, db)
			}
		}
	}
	if fired == 0 {
		t.Fatal("no certificate ever fired; generators too weak")
	}
}

func TestCertifyRequiresConnectedAndNonEmpty(t *testing.T) {
	p := Profile{Connected: false, ResultNonEmpty: true,
		Reports: []conditions.Report{{Cond: conditions.C3, Holds: true}}}
	if len(Certify(p)) != 0 {
		t.Fatal("unconnected schemes get no certificates")
	}
	p = Profile{Connected: true, ResultNonEmpty: false,
		Reports: []conditions.Report{{Cond: conditions.C3, Holds: true}}}
	if len(Certify(p)) != 0 {
		t.Fatal("empty results get no certificates")
	}
}

func TestAnalyzeRejectsInvalidDatabase(t *testing.T) {
	if _, err := Analyze(database.New()); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestAnalysisResultLookup(t *testing.T) {
	an, err := Analyze(paperex.Example1())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := an.Result(optimizer.SpaceAll); !ok {
		t.Fatal("SpaceAll result missing")
	}
	if _, ok := an.Result(optimizer.Space(9)); ok {
		t.Fatal("unknown space should not resolve")
	}
	// Example 1 is unconnected with one multi-relation component, so the
	// linear-no-CP space is nonempty and must be reported.
	if _, ok := an.Result(optimizer.SpaceLinearNoCP); !ok {
		t.Fatal("linear-no-CP result missing")
	}
}

func TestProfileHoldsUnknownCondition(t *testing.T) {
	p := Profile{}
	if p.Holds(conditions.C1) {
		t.Fatal("empty profile holds nothing")
	}
}
