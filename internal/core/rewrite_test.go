package core

import (
	"math/rand"
	"testing"

	"multijoin/internal/conditions"
	"multijoin/internal/database"
	"multijoin/internal/gen"
	"multijoin/internal/paperex"
	"multijoin/internal/strategy"
)

// randomStrategy picks a uniformly random strategy shape for the
// database by random recursive splitting.
func randomStrategy(rng *rand.Rand, db *database.Database) *strategy.Node {
	var build func(idx []int) *strategy.Node
	build = func(idx []int) *strategy.Node {
		if len(idx) == 1 {
			return strategy.Leaf(idx[0])
		}
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		cut := 1 + rng.Intn(len(idx)-1)
		return strategy.Combine(build(append([]int{}, idx[:cut]...)), build(append([]int{}, idx[cut:]...)))
	}
	idx := make([]int, db.Len())
	for i := range idx {
		idx[i] = i
	}
	return build(idx)
}

func TestAvoidCPRewriteAlwaysLandsInSubspace(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 80; trial++ {
		var db *database.Database
		if trial%2 == 0 {
			db = gen.Uniform(rng, gen.Schemes(gen.Chain, 5), 4, 3)
		} else {
			db = gen.Uniform(rng, gen.RandomConnectedSchemes(rng, 5, 0.2), 4, 3)
		}
		ev := database.NewEvaluator(db)
		s := randomStrategy(rng, db)
		out := AvoidCPRewrite(ev, s)
		if err := out.Validate(db.All()); err != nil {
			t.Fatalf("trial %d: invalid output: %v", trial, err)
		}
		if !out.AvoidsCartesian(db.Graph()) {
			t.Fatalf("trial %d: output %s does not avoid Cartesian products", trial, out)
		}
	}
}

func TestAvoidCPRewriteNeverIncreasesCostUnderC1C2(t *testing.T) {
	// Lemmas 2–4's guarantee, validated empirically: when C1 ∧ C2 hold
	// and R_D ≠ ∅, the rewrite never increases τ.
	rng := rand.New(rand.NewSource(32))
	checked := 0
	for trial := 0; trial < 200; trial++ {
		db := gen.Diagonal(rng, gen.RandomConnectedSchemes(rng, 5, 0.25), 7, 0.55)
		ev := database.NewEvaluator(db)
		if ev.Result().Empty() {
			continue
		}
		if !conditions.Check(ev, conditions.C1).Holds || !conditions.Check(ev, conditions.C2).Holds {
			continue
		}
		checked++
		s := randomStrategy(rng, db)
		out := AvoidCPRewrite(ev, s)
		if out.Cost(ev) > s.Cost(ev) {
			t.Fatalf("trial %d: rewrite increased τ from %d to %d\nin: %s\nout: %s",
				trial, s.Cost(ev), out.Cost(ev), s, out)
		}
	}
	if checked < 20 {
		t.Fatalf("only %d trials satisfied C1∧C2; generator too weak", checked)
	}
}

func TestAvoidCPRewriteUnconnectedScheme(t *testing.T) {
	// Example 1's scheme is unconnected; the rewrite must still produce a
	// strategy that avoids CPs (components individually + mandatory
	// products only).
	db := paperex.Example1()
	ev := database.NewEvaluator(db)
	s := strategy.Combine(
		strategy.Combine(strategy.Leaf(0), strategy.Leaf(2)),
		strategy.Combine(strategy.Leaf(1), strategy.Leaf(3))) // S4, full of CPs
	out := AvoidCPRewrite(ev, s)
	if !out.AvoidsCartesian(db.Graph()) {
		t.Fatalf("output %s does not avoid CPs", out.Render(db))
	}
}

func TestAvoidCPRewriteIdempotentOnGoodInput(t *testing.T) {
	db := paperex.Example5()
	ev := database.NewEvaluator(db)
	s := strategy.Combine(
		strategy.Combine(strategy.Leaf(0), strategy.Leaf(1)),
		strategy.Combine(strategy.Leaf(2), strategy.Leaf(3)))
	out := AvoidCPRewrite(ev, s)
	if !out.Equal(s) {
		t.Fatalf("CP-free input should be unchanged, got %s", out.Render(db))
	}
}

func TestLinearizeRewriteProducesLinearNoCP(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 60; trial++ {
		db := gen.Uniform(rng, gen.Schemes(gen.Chain, 5), 4, 3)
		ev := database.NewEvaluator(db)
		g := db.Graph()
		// Start from a random CP-free strategy.
		var input *strategy.Node
		count := 0
		pick := rng.Intn(14)
		strategy.EnumerateConnected(g, db.All(), func(n *strategy.Node) bool {
			if count == pick {
				input = n.Clone()
				return false
			}
			count++
			return true
		})
		if input == nil {
			t.Fatal("no connected strategy found")
		}
		out := LinearizeRewrite(ev, input)
		if !out.IsLinear() {
			t.Fatalf("trial %d: output %s not linear", trial, out)
		}
		if out.UsesCartesian(g) {
			t.Fatalf("trial %d: output %s uses a Cartesian product", trial, out)
		}
		if err := out.Validate(db.All()); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLinearizeRewriteNeverIncreasesCostUnderC3(t *testing.T) {
	// Lemma 6's guarantee: under C3, flattening a CP-free strategy into a
	// linear one costs nothing.
	rng := rand.New(rand.NewSource(34))
	checked := 0
	for trial := 0; trial < 150; trial++ {
		db := gen.Diagonal(rng, gen.Schemes(gen.Chain, 5), 7, 0.6)
		ev := database.NewEvaluator(db)
		if ev.Result().Empty() || !conditions.Check(ev, conditions.C3).Holds {
			continue
		}
		checked++
		g := db.Graph()
		strategy.EnumerateConnected(g, db.All(), func(n *strategy.Node) bool {
			out := LinearizeRewrite(ev, n)
			if out.Cost(ev) > n.Cost(ev) {
				t.Fatalf("trial %d: linearization increased τ from %d to %d\nin: %s\nout: %s",
					trial, n.Cost(ev), out.Cost(ev), n, out)
			}
			return true
		})
	}
	if checked < 20 {
		t.Fatalf("only %d trials satisfied C3", checked)
	}
}

func TestLinearizeRewritePanicsOnCP(t *testing.T) {
	db := paperex.Example1()
	ev := database.NewEvaluator(db)
	s := strategy.Combine(
		strategy.Combine(strategy.Leaf(0), strategy.Leaf(2)),
		strategy.Combine(strategy.Leaf(1), strategy.Leaf(3)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on CP-using input")
		}
	}()
	LinearizeRewrite(ev, s)
}

func TestRewritePipelineReprovesTheorem3(t *testing.T) {
	// The constructive pipeline behind Theorem 3: start from *any*
	// strategy, avoid CPs (Lemmas 2–4), then linearize (Lemma 6). Under
	// C3 the result is a linear CP-free strategy costing no more than the
	// input — applied to an optimal input, it exhibits a linear CP-free
	// optimum, which is exactly Theorem 3's claim.
	rng := rand.New(rand.NewSource(35))
	verified := 0
	for trial := 0; trial < 100; trial++ {
		db := gen.Diagonal(rng, gen.RandomConnectedSchemes(rng, 5, 0.3), 7, 0.5)
		ev := database.NewEvaluator(db)
		if ev.Result().Empty() || !conditions.Check(ev, conditions.C3).Holds {
			continue
		}
		verified++
		s := randomStrategy(rng, db)
		nocp := AvoidCPRewrite(ev, s)
		lin := LinearizeRewrite(ev, nocp)
		if lin.Cost(ev) > s.Cost(ev) {
			t.Fatalf("trial %d: pipeline increased τ from %d to %d", trial, s.Cost(ev), lin.Cost(ev))
		}
		if !lin.IsLinear() || lin.UsesCartesian(db.Graph()) {
			t.Fatalf("trial %d: pipeline output not linear CP-free: %s", trial, lin)
		}
	}
	if verified < 20 {
		t.Fatalf("only %d trials satisfied C3", verified)
	}
}
