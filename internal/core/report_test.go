package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"multijoin/internal/conditions"
	"multijoin/internal/database"
	"multijoin/internal/paperex"
	"multijoin/internal/relation"
)

func TestWriteReportExample5(t *testing.T) {
	db := paperex.Example5()
	an, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteReport(&buf, db, an)
	out := buf.String()
	for _, want := range []string{
		"scheme connected: true",
		"C3 violated",
		"Theorem 2",
		"((MS⋈SC)⋈(CI⋈ID))",
		"[System R, Office-by-Example]",
		"[GAMMA]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReportNoCertificates(t *testing.T) {
	db := paperex.Example1() // unconnected: no certificates
	an, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteReport(&buf, db, an)
	if !strings.Contains(buf.String(), "none — no theorem guarantees") {
		t.Errorf("missing no-certificate note:\n%s", buf.String())
	}
}

func TestWriteReportEmptyLinearNoCPSubspace(t *testing.T) {
	db := database.New(
		relation.FromStrings("R1", "AB", "1 x"),
		relation.FromStrings("R2", "BC", "x 1"),
		relation.FromStrings("R3", "DE", "2 y"),
		relation.FromStrings("R4", "EF", "y 2"),
	)
	an, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	WriteReport(&buf, db, an)
	if !strings.Contains(buf.String(), "empty subspace for this scheme") {
		t.Errorf("missing empty-subspace note:\n%s", buf.String())
	}
}

func TestEncodeAnalysisJSONShape(t *testing.T) {
	db := paperex.Example4()
	an, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeAnalysisJSON(&buf, db, an); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Connected  bool `json:"connected"`
		Conditions []struct {
			Condition string `json:"condition"`
			Holds     bool   `json:"holds"`
			Witness   string `json:"witness,omitempty"`
		} `json:"conditions"`
		Certificates []struct{} `json:"certificates"`
		Optima       []struct {
			Space string `json:"space"`
			Tau   int    `json:"tau"`
		} `json:"optima"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if !parsed.Connected {
		t.Fatal("Example 4 is connected")
	}
	if len(parsed.Conditions) != 5 {
		t.Fatalf("%d conditions reported", len(parsed.Conditions))
	}
	// C1 is violated and must carry a witness string.
	foundC1 := false
	for _, c := range parsed.Conditions {
		if c.Condition == "C1" {
			foundC1 = true
			if c.Holds || c.Witness == "" {
				t.Fatalf("C1 entry wrong: %+v", c)
			}
		}
	}
	if !foundC1 {
		t.Fatal("C1 entry missing")
	}
	// Example 4 violates C1 so no certificates; optima must include the
	// all-space at τ=11.
	if len(parsed.Certificates) != 0 {
		t.Fatal("Example 4 gets no certificates")
	}
	found := false
	for _, o := range parsed.Optima {
		if o.Space == "all" && o.Tau == 11 {
			found = true
		}
	}
	if !found {
		t.Fatalf("all-space τ=11 missing: %+v", parsed.Optima)
	}
}

func TestVerifyCertificatesDetectsTampering(t *testing.T) {
	// A tampered analysis (claiming a certificate its optima contradict)
	// must fail verification — the function's whole point.
	db := paperex.Example4()
	an, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	an.Certificates = append(an.Certificates, Certificate{
		Theorem: Theorem2,
		Space:   0, // SpaceAll; value unused by the check
	})
	if err := VerifyCertificates(an); err == nil {
		t.Fatal("forged Theorem 2 certificate must fail on Example 4 (no-CP 12 ≠ all 11)")
	}
}

func TestCertifyTheoremSet(t *testing.T) {
	// A profile with every condition satisfied yields all three
	// certificates, each naming its space.
	p := Profile{Connected: true, ResultNonEmpty: true}
	for _, c := range []conditions.Condition{
		conditions.C1, conditions.C1Strict, conditions.C2,
		conditions.C3, conditions.C4,
	} {
		p.Reports = append(p.Reports, conditions.Report{Cond: c, Holds: true})
	}
	certs := Certify(p)
	if len(certs) != 3 {
		t.Fatalf("%d certificates, want 3", len(certs))
	}
	seen := map[Theorem]bool{}
	for _, c := range certs {
		seen[c.Theorem] = true
		if c.Guarantee == "" {
			t.Fatal("certificate must carry its guarantee text")
		}
	}
	if !seen[Theorem1] || !seen[Theorem2] || !seen[Theorem3] {
		t.Fatalf("theorems missing: %v", seen)
	}
}
