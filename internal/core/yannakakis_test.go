package core

import (
	"strings"
	"testing"

	"multijoin/internal/database"
	"multijoin/internal/guard"
	"multijoin/internal/obs"
	"multijoin/internal/paperex"
	"multijoin/internal/relation"
)

// TestAnalyzeYannakakisResult: on an acyclic scheme the analysis carries
// the fifth strategy space — the governed reduction + join-tree join —
// with its intermediates bounded by the output (the Section 5 regime).
func TestAnalyzeYannakakisResult(t *testing.T) {
	db := paperex.Example5()
	an, err := Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	y := an.Yannakakis
	if y == nil {
		t.Fatal("acyclic scheme produced no yannakakis result")
	}
	if y.Strategy == nil || y.Strategy.Set() != db.All() {
		t.Fatalf("yannakakis strategy does not cover the database: %v", y.Strategy)
	}
	kernel := database.NewEvaluator(db).Result().Size()
	if y.Output != kernel {
		t.Errorf("yannakakis output = %d, kernel R_D = %d", y.Output, kernel)
	}
	if y.MaxIntermediate > y.Output {
		t.Errorf("max intermediate %d exceeds output %d after full reduction",
			y.MaxIntermediate, y.Output)
	}
	if len(y.Intermediates) != db.Len()-1 {
		t.Errorf("%d join intermediates, want %d", len(y.Intermediates), db.Len()-1)
	}
	if y.Semijoins != 2*(db.Len()-1) {
		t.Errorf("semijoin program length = %d, want %d", y.Semijoins, 2*(db.Len()-1))
	}
}

// TestAnalyzeCyclicSchemeHasNoYannakakis: the fast path is gated on the
// scheme-only acyclicity check.
func TestAnalyzeCyclicSchemeHasNoYannakakis(t *testing.T) {
	tri := database.New(
		relation.FromStrings("R1", "AB", "1 x", "2 y"),
		relation.FromStrings("R2", "BC", "x 7", "y 8"),
		relation.FromStrings("R3", "CA", "7 1", "8 2"),
	)
	an, err := Analyze(tri)
	if err != nil {
		t.Fatal(err)
	}
	if an.Yannakakis != nil {
		t.Fatal("cyclic scheme produced a yannakakis result")
	}
}

// TestYannakakisSpanReconcilesWithLedger is the acceptance identity for
// the fast path: the phase:optimize:yannakakis span's guard-delta stamps
// equal the plan.yannakakis.* counters exactly — the span attribution,
// the obs mirror and the guard ledger are three views of one spend.
func TestYannakakisSpanReconcilesWithLedger(t *testing.T) {
	db := paperex.Example5()
	g := guard.New(nil, guard.Limits{})
	rec := obs.NewRecorder()
	ev := database.NewEvaluator(db).WithGuard(g).WithRecorder(rec)
	an, err := AnalyzeEvaluatorSequential(ev)
	if err != nil {
		t.Fatal(err)
	}
	if an.Yannakakis == nil {
		t.Fatal("no yannakakis result to reconcile")
	}
	var span *obs.SpanRecord
	for i, sp := range rec.Spans() {
		if sp.Name == "phase:optimize:yannakakis" {
			span = &rec.Spans()[i]
			break
		}
	}
	if span == nil {
		t.Fatal("trace has no phase:optimize:yannakakis span")
	}
	if got, want := span.Tuples, rec.Counter(obs.MetricYannakakisTuples).Value(); got != want {
		t.Errorf("span tuples delta = %d, plan.yannakakis.tuples = %d", got, want)
	}
	if got, want := span.States, rec.Counter(obs.MetricYannakakisStates).Value(); got != want {
		t.Errorf("span states delta = %d, plan.yannakakis.states = %d", got, want)
	}
	if got, want := span.Steps, rec.Counter(obs.MetricYannakakisSteps).Value(); got != want {
		t.Errorf("span steps delta = %d, plan.yannakakis.steps = %d", got, want)
	}
	// The counter decomposes into the reduction's semijoin sizes plus the
	// join phase's intermediates — nothing else charges this family.
	semiPlusJoins := int64(an.Yannakakis.SemijoinTuples + an.Yannakakis.Tau)
	if got := rec.Counter(obs.MetricYannakakisTuples).Value(); got != semiPlusJoins {
		t.Errorf("plan.yannakakis.tuples = %d, semijoin+join sizes = %d", got, semiPlusJoins)
	}
}

// TestAnalyzeYannakakisTruncates: a tuple budget that survives every
// earlier phase but dies inside the fast path records a truncation —
// the rest of the analysis is preserved, not thrown away.
func TestAnalyzeYannakakisTruncates(t *testing.T) {
	db := paperex.Example5()
	// Learn the spend profile from an ungoverned observed run.
	g := guard.New(nil, guard.Limits{})
	rec := obs.NewRecorder()
	ev := database.NewEvaluator(db).WithGuard(g).WithRecorder(rec)
	if _, err := AnalyzeEvaluatorSequential(ev); err != nil {
		t.Fatal(err)
	}
	total := g.Snapshot().Tuples.Spent
	yann := rec.Counter(obs.MetricYannakakisTuples).Value()
	if yann < 2 {
		t.Fatalf("fixture too small: yannakakis phase charges only %d tuples", yann)
	}
	// Budget exactly the pre-yannakakis spend: every earlier phase fits,
	// the fast path trips partway through its semijoin program.
	g2 := guard.New(nil, guard.Limits{MaxTuples: total - yann})
	ev2 := database.NewEvaluator(db).WithGuard(g2)
	an, err := AnalyzeEvaluatorSequential(ev2)
	if err != nil {
		t.Fatal(err)
	}
	if an.Yannakakis != nil {
		t.Fatal("tripped fast path still reported a result")
	}
	if len(an.Results) == 0 {
		t.Fatal("earlier subspace optima were lost")
	}
	found := false
	for _, tr := range an.Truncated {
		if strings.Contains(tr.Phase, "yannakakis") {
			found = true
			if !guard.Tripped(tr.Err) {
				t.Errorf("truncation error not typed: %v", tr.Err)
			}
		}
	}
	if !found {
		t.Fatalf("no yannakakis truncation recorded: %+v", an.Truncated)
	}
}
