package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"multijoin/internal/database"
	"multijoin/internal/estimate"
	"multijoin/internal/gen"
	"multijoin/internal/guard"
	"multijoin/internal/obs"
	"multijoin/internal/optimizer"
	"multijoin/internal/paperex"
)

func TestAnalyzeEstimatedChoosesValidPlans(t *testing.T) {
	for _, model := range []PlanModel{ModelUniform, ModelHistogram} {
		db := paperex.Example5()
		an, err := AnalyzeEstimated(db, model, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if an.Model != model.String() {
			t.Fatalf("model label %q", an.Model)
		}
		if len(an.Results) == 0 {
			t.Fatal("no subspace results")
		}
		for _, r := range an.Results {
			if err := r.Strategy.Validate(db.All()); err != nil {
				t.Fatalf("%v: %v", r.Space, err)
			}
			if r.TrueTau != -1 {
				t.Fatalf("%v: TrueTau set before execution", r.Space)
			}
		}
		if err := an.Greedy.Strategy.Validate(db.All()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnalyzeEstimatedExecuteChosen(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 10; trial++ {
		db := gen.Zipf(rng, gen.Schemes(gen.Chain, 5), 8, 4, 1.4)
		ev := database.NewEvaluator(db)
		an, err := AnalyzeEstimated(db, ModelUniform, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := an.ExecuteChosen(ev); err != nil {
			t.Fatal(err)
		}
		best, err := optimizer.Optimize(ev, optimizer.SpaceAll)
		if err != nil {
			t.Fatal(err)
		}
		all, ok := an.Result(optimizer.SpaceAll)
		if !ok {
			t.Fatal("SpaceAll missing")
		}
		if all.TrueTau < best.Cost {
			t.Fatalf("trial %d: impossible — estimated plan beats the optimum (%d < %d)",
				trial, all.TrueTau, best.Cost)
		}
		if an.Greedy.TrueTau < best.Cost {
			t.Fatalf("trial %d: greedy beats the optimum", trial)
		}
	}
}

func TestAnalyzeEstimatedNeverTouchesTupleData(t *testing.T) {
	// The planning phase must not execute joins: with a guard whose
	// tuple budget is zero, planning succeeds (the catalog scan reads
	// base relations directly, not through governed joins) while any
	// accidental evaluator call would trip immediately.
	db := paperex.Example5()
	g := guard.New(context.Background(), guard.Limits{MaxTuples: 1})
	an, err := AnalyzeEstimated(db, ModelUniform, g, obs.NewRecorder())
	if err != nil {
		t.Fatalf("planning spent tuples: %v", err)
	}
	if tuples, _, _ := g.Spent(); tuples != 0 {
		t.Fatalf("planning charged %d tuples", tuples)
	}
	if len(an.Results) == 0 {
		t.Fatal("no results")
	}
}

func TestAnalyzeEstimatedGoverned(t *testing.T) {
	db := paperex.Example5()
	g := guard.New(context.Background(), guard.Limits{MaxStates: 3})
	_, err := AnalyzeEstimated(db, ModelUniform, g, obs.NewRecorder())
	var be *guard.BudgetError
	if !errors.As(err, &be) || be.Resource != "states" {
		t.Fatalf("want states budget error, got %v", err)
	}
}

func TestAnalyzeEstimatedSpansAndMetrics(t *testing.T) {
	db := paperex.Example1()
	rec := obs.NewRecorder()
	if _, err := AnalyzeEstimated(db, ModelHistogram, guard.New(context.Background(), guard.Limits{}), rec); err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	if snap.Counters[obs.MetricPlanStates] == 0 {
		t.Fatal("plan.states not recorded")
	}
	if _, ok := snap.Timers[obs.MetricPlanWall]; !ok {
		t.Fatal("plan.wall not recorded")
	}
	if _, ok := snap.Timers[obs.MetricPlanCatalogWall]; !ok {
		t.Fatal("plan.catalog.wall not recorded")
	}
	var sawRoot, sawSpace bool
	for _, sp := range rec.Spans() {
		switch sp.Name {
		case obs.SpanPlan:
			sawRoot = true
		case obs.SpanPlanSpace(optimizer.SpaceAll.String()):
			sawSpace = true
		}
	}
	if !sawRoot || !sawSpace {
		t.Fatalf("span tree incomplete: root %v, space %v", sawRoot, sawSpace)
	}
}

func TestAnalyzeEstimatedMatchesCatalogOptimize(t *testing.T) {
	// The SpaceAll result must be the same plan estimate.Catalog.Optimize
	// picks — one pipeline, two entry points.
	rng := rand.New(rand.NewSource(312))
	for trial := 0; trial < 10; trial++ {
		db := gen.Uniform(rng, gen.Schemes(gen.Star, 5), 7, 3)
		an, err := AnalyzeEstimated(db, ModelUniform, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		all, ok := an.Result(optimizer.SpaceAll)
		if !ok {
			t.Fatal("SpaceAll missing")
		}
		if got, want := all.Strategy.String(), estimate.NewCatalog(db).Optimize().String(); got != want {
			t.Fatalf("trial %d: pipeline plan %s, catalog plan %s", trial, got, want)
		}
	}
}

func TestPlanModelString(t *testing.T) {
	if ModelUniform.String() != "uniform" || ModelHistogram.String() != "histogram" {
		t.Fatal("model names drifted")
	}
	if PlanModel(9).String() != "model(9)" {
		t.Fatal("unknown model label drifted")
	}
}
