package core

import (
	"encoding/json"
	"io"

	"multijoin/internal/database"
)

// Machine-readable analysis output, for downstream tooling (the CLI's
// `-format json`).

type jsonCondition struct {
	Condition string `json:"condition"`
	Holds     bool   `json:"holds"`
	Witness   string `json:"witness,omitempty"`
}

type jsonCertificate struct {
	Theorem   int    `json:"theorem"`
	Space     string `json:"space"`
	Guarantee string `json:"guarantee"`
}

type jsonResult struct {
	Space    string `json:"space"`
	Cost     int    `json:"tau"`
	Strategy string `json:"strategy"`
	States   int    `json:"dpStates"`
}

type jsonTruncation struct {
	Phase string `json:"phase"`
	Error string `json:"error"`
}

type jsonYannakakis struct {
	Tau             int    `json:"tau"`
	Strategy        string `json:"strategy"`
	Intermediates   []int  `json:"intermediates"`
	MaxIntermediate int    `json:"maxIntermediate"`
	Semijoins       int    `json:"semijoins"`
	SemijoinTuples  int    `json:"semijoinTuples"`
	Output          int    `json:"output"`
}

type jsonAnalysis struct {
	Connected      bool              `json:"connected"`
	ResultNonEmpty bool              `json:"resultNonEmpty"`
	Conditions     []jsonCondition   `json:"conditions"`
	Certificates   []jsonCertificate `json:"certificates"`
	Optima         []jsonResult      `json:"optima"`
	Truncated      []jsonTruncation  `json:"truncated,omitempty"`
	Yannakakis     *jsonYannakakis   `json:"yannakakis,omitempty"`
}

// EncodeAnalysisJSON writes the analysis in a stable JSON shape.
// Strategies are rendered in the parseable parenthesized form, so a
// round trip through strategy.Parse recovers them.
func EncodeAnalysisJSON(w io.Writer, db *database.Database, an *Analysis) error {
	out := jsonAnalysis{
		Connected:      an.Profile.Connected,
		ResultNonEmpty: an.Profile.ResultNonEmpty,
		Conditions:     []jsonCondition{},
		Certificates:   []jsonCertificate{},
		Optima:         []jsonResult{},
	}
	for _, rep := range an.Profile.Reports {
		jc := jsonCondition{Condition: rep.Cond.String(), Holds: rep.Holds}
		if rep.Witness != nil {
			jc.Witness = rep.Witness.String()
		}
		out.Conditions = append(out.Conditions, jc)
	}
	for _, c := range an.Certificates {
		out.Certificates = append(out.Certificates, jsonCertificate{
			Theorem: int(c.Theorem), Space: c.Space.String(), Guarantee: c.Guarantee,
		})
	}
	for _, res := range an.Results {
		out.Optima = append(out.Optima, jsonResult{
			Space: res.Space.String(), Cost: res.Cost,
			Strategy: res.Strategy.Render(db), States: res.States,
		})
	}
	for _, tr := range an.Truncated {
		out.Truncated = append(out.Truncated, jsonTruncation{
			Phase: tr.Phase, Error: tr.Err.Error(),
		})
	}
	if y := an.Yannakakis; y != nil {
		ints := y.Intermediates
		if ints == nil {
			ints = []int{}
		}
		out.Yannakakis = &jsonYannakakis{
			Tau: y.Tau, Strategy: y.Strategy.Render(db), Intermediates: ints,
			MaxIntermediate: y.MaxIntermediate, Semijoins: y.Semijoins,
			SemijoinTuples: y.SemijoinTuples, Output: y.Output,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
