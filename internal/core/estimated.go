package core

import (
	"fmt"

	"multijoin/internal/database"
	"multijoin/internal/estimate"
	"multijoin/internal/guard"
	"multijoin/internal/obs"
	"multijoin/internal/optimizer"
	"multijoin/internal/semijoin"
	"multijoin/internal/strategy"
)

// Estimate-driven planning: the analyze pipeline's second mode. Instead
// of obtaining exact τ for every DP subproblem by executing joins
// through the evaluator memo — faithful to the paper but unusable when
// you cannot run the query to plan it — AnalyzeEstimated builds a
// statistics catalog and runs the same four subspace DPs plus greedy
// against the catalog's size model, never touching tuple data. The
// chosen strategies can then be executed once (ExecuteChosen) to learn
// their true τ, which is how the planning bench section and the regret
// experiment quantify what trusting estimates costs.

// PlanModel selects the statistics model estimate-driven planning runs
// against.
type PlanModel int

const (
	// ModelUniform plans from estimate.Catalog: cardinalities and
	// distinct counts under uniformity and independence.
	ModelUniform PlanModel = iota
	// ModelHistogram plans from estimate.HistogramCatalog: exact
	// per-attribute value frequencies, independence still assumed across
	// predicates.
	ModelHistogram
)

// String names the model as it appears in flags, metrics and reports.
func (m PlanModel) String() string {
	switch m {
	case ModelUniform:
		return "uniform"
	case ModelHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("model(%d)", int(m))
	}
}

// EstimatedResult is one model-driven search outcome, optionally costed
// under the true τ after execution.
type EstimatedResult struct {
	// Space is the searched subspace (SpaceGreedy for the heuristic).
	Space optimizer.Space
	// Strategy is the plan the model picked.
	Strategy *strategy.Node
	// Est is the model's estimated τ for the strategy.
	Est float64
	// States counts DP states (or greedy probes) examined.
	States int
	// TrueTau is the strategy's measured τ, -1 until ExecuteChosen runs.
	TrueTau int
}

// EstimatedAnalysis is AnalyzeEstimated's output: one model-chosen plan
// per non-empty subspace, plus the model-driven greedy heuristic.
type EstimatedAnalysis struct {
	// Model names the statistics model the plans were chosen under.
	Model string
	// Results holds one result per searchable subspace, in DPSpaces()
	// order, skipping empty subspaces.
	Results []EstimatedResult
	// Greedy is the model-driven smallest-result-first outcome.
	Greedy EstimatedResult
	// Yannakakis is the acyclic fast path's join-tree strategy costed
	// under the model, present only when the catalog-side (scheme-only)
	// acyclicity check passes. Est prices the binary join phase; the
	// fast path's actual execution additionally semijoin-reduces first,
	// so its realized intermediates are bounded by the output.
	Yannakakis *EstimatedResult
}

// Result returns the estimated result for the given space, if present.
func (a *EstimatedAnalysis) Result(s optimizer.Space) (EstimatedResult, bool) {
	if s == optimizer.SpaceGreedy {
		return a.Greedy, true
	}
	if s == optimizer.SpaceYannakakis {
		if a.Yannakakis == nil {
			return EstimatedResult{}, false
		}
		return *a.Yannakakis, true
	}
	for _, r := range a.Results {
		if r.Space == s {
			return r, true
		}
	}
	return EstimatedResult{}, false
}

// AnalyzeEstimated plans in every subspace from the model's statistics
// without executing a single join: it gathers the catalog (the only
// pass over tuple data, a linear scan timed in plan.catalog.wall), then
// runs the model-costed DPs and greedy sequentially — catalogs reuse
// scratch buffers and are not safe for concurrent probing. Each DP
// state charges the guard's state budget exactly like the exact
// pipeline's, so -max-states governs both modes; a trip unwinds as the
// typed governance error. Both g and rec may be nil.
func AnalyzeEstimated(db *database.Database, model PlanModel,
	g *guard.Guard, rec *obs.Recorder) (an *EstimatedAnalysis, err error) {
	defer guard.Trap(&err)
	if err := db.Validate(); err != nil {
		return nil, err
	}
	root := rec.StartSpan(obs.SpanPlan)
	defer root.End()
	before := g.Snapshot()
	defer func() {
		after := g.Snapshot()
		root.AddDelta(after.Tuples.Spent-before.Tuples.Spent,
			after.States.Spent-before.States.Spent,
			after.Steps.Spent-before.Steps.Spent)
		if err != nil {
			root.Fail(err)
		}
	}()
	watch := rec.Timer(obs.MetricPlanWall).Start()
	defer watch.Stop()

	cwatch := rec.Timer(obs.MetricPlanCatalogWall).Start()
	var size optimizer.SizeModel
	switch model {
	case ModelUniform:
		size = estimate.NewCatalog(db).Size
	case ModelHistogram:
		size = estimate.NewHistogramCatalog(db).Size
	default:
		cwatch.Stop()
		return nil, fmt.Errorf("core: unknown plan model %v", model)
	}
	cwatch.Stop()

	an = &EstimatedAnalysis{Model: model.String()}
	for _, sp := range optimizer.DPSpaces() {
		span := rec.StartSpan(obs.SpanPlanSpace(sp.String()))
		res, serr := optimizer.OptimizeModelObserved(db, size, sp, g, rec)
		if serr != nil {
			span.Fail(serr)
		}
		span.End()
		if serr == optimizer.ErrEmptySpace {
			continue
		}
		if serr != nil {
			return nil, serr
		}
		an.Results = append(an.Results, EstimatedResult{
			Space: sp, Strategy: res.Strategy, Est: res.Est,
			States: res.States, TrueTau: -1,
		})
	}
	gres, gerr := optimizer.GreedyModelObserved(db, size, g, rec)
	if gerr != nil {
		return nil, gerr
	}
	an.Greedy = EstimatedResult{
		Space: optimizer.SpaceGreedy, Strategy: gres.Strategy, Est: gres.Est,
		States: gres.States, TrueTau: -1,
	}

	// Catalog-side acyclicity check: the fast path is planned from the
	// scheme alone — no tuple data — and its binary join phase is costed
	// under the same size model, so planMode pipelines can pick it
	// purely from statistics.
	if db.Graph().AcyclicComponents() {
		span := rec.StartSpan(obs.SpanPlanSpace(optimizer.SpaceYannakakis.String()))
		node, yerr := semijoin.JoinTreeStrategy(db)
		if yerr != nil {
			span.Fail(yerr)
			span.End()
			return nil, yerr
		}
		est := 0.0
		steps := 0
		for _, st := range node.Steps() {
			est += size(st.Set())
			steps++
		}
		cStates := rec.Counter(obs.MetricPlanStates)
		cStates.Add(int64(steps))
		if cerr := g.ChargeStates(steps); cerr != nil {
			span.Fail(cerr)
			span.End()
			return nil, cerr
		}
		span.End()
		an.Yannakakis = &EstimatedResult{
			Space: optimizer.SpaceYannakakis, Strategy: node, Est: est,
			States: steps, TrueTau: -1,
		}
	}
	return an, nil
}

// ExecuteChosen costs every chosen strategy under the true τ by
// executing it through the evaluator — the one deliberate crossing from
// plan-time to run-time, after which TrueTau holds the measured cost.
// Execution charges the evaluator's guard; a budget trip unwinds as the
// typed governance error with the already-measured results retained.
func (a *EstimatedAnalysis) ExecuteChosen(ev *database.Evaluator) (err error) {
	defer guard.Trap(&err)
	for i := range a.Results {
		a.Results[i].TrueTau = a.Results[i].Strategy.Cost(ev)
	}
	a.Greedy.TrueTau = a.Greedy.Strategy.Cost(ev)
	if a.Yannakakis != nil {
		a.Yannakakis.TrueTau = a.Yannakakis.Strategy.Cost(ev)
	}
	return nil
}
