// Package core is the executable form of the paper's contribution. Given
// a database, the Analyzer
//
//  1. checks the conditions C1, C1′, C2, C3 (and C4) of Sections 3 and 5,
//  2. applies Theorems 1–3 to certify which restricted strategy subspaces
//     are guaranteed to still contain a τ-optimum strategy, and
//  3. optionally cross-checks each certificate against exhaustive
//     optimization, so that the theory is continuously validated on the
//     instance at hand.
//
// The package also provides the constructive counterparts of the proofs:
// AvoidCPRewrite turns a strategy into one that avoids Cartesian products
// without increasing τ (the Lemma 2/3/4 transformation sequence behind
// Theorem 2), and LinearizeRewrite turns a Cartesian-product-free
// strategy into a linear one without increasing τ under C3 (the Lemma 6
// transfer argument behind Theorem 3).
package core

import (
	"fmt"
	"sync"

	"multijoin/internal/conditions"
	"multijoin/internal/database"
	"multijoin/internal/guard"
	"multijoin/internal/obs"
	"multijoin/internal/optimizer"
	"multijoin/internal/semijoin"
	"multijoin/internal/strategy"
)

// Theorem identifies one of the paper's three main results.
type Theorem int

const (
	// Theorem1: connected scheme, R_D ≠ ∅, C1′ ⟹ a τ-optimum *linear*
	// strategy does not use Cartesian products, so the linear-no-CP
	// subspace attains the linear optimum.
	Theorem1 Theorem = 1
	// Theorem2: connected scheme, R_D ≠ ∅, C1 ∧ C2 ⟹ some τ-optimum
	// strategy uses no Cartesian products, so the no-CP subspace attains
	// the global optimum.
	Theorem2 Theorem = 2
	// Theorem3: connected scheme, R_D ≠ ∅, C3 ⟹ some τ-optimum strategy
	// is linear and uses no Cartesian products, so the linear-no-CP
	// subspace attains the global optimum.
	Theorem3 Theorem = 3
)

// Certificate states that, by one of the paper's theorems, restricting
// the optimizer's search to Space is safe in the sense described by
// Guarantee.
type Certificate struct {
	Theorem   Theorem
	Space     optimizer.Space
	Guarantee string
}

// Profile is the database's condition profile.
type Profile struct {
	Connected      bool
	ResultNonEmpty bool
	Reports        []conditions.Report // C1, C1′, C2, C3, C4 in order
}

// Holds reports whether the given condition holds in the profile.
func (p Profile) Holds(c conditions.Condition) bool {
	for _, r := range p.Reports {
		if r.Cond == c {
			return r.Holds
		}
	}
	return false
}

// Truncation records a phase of the analysis that the resource guard
// cut short, together with the typed governance error that cut it.
type Truncation struct {
	Phase string
	Err   error
}

// Analysis is the Analyzer's output.
type Analysis struct {
	Profile      Profile
	Certificates []Certificate
	// Results holds one optimization result per subspace, in the order
	// SpaceAll, SpaceNoCP, SpaceLinear, SpaceLinearNoCP. Subspaces that
	// are empty for this scheme are skipped.
	Results []optimizer.Result
	// Truncated lists the phases cut short by the resource guard, in
	// execution order. Empty for ungoverned or within-budget runs; when
	// non-empty the analysis is partial and certificate verification
	// against measured optima may be impossible.
	Truncated []Truncation
	// Yannakakis reports the acyclic fast path's outcome — present only
	// when every component of the scheme is α-acyclic and the governed
	// reduction ran to completion. It is not a subspace optimum (the
	// join tree is derived, not searched), so it lives beside Results
	// rather than in them.
	Yannakakis *YannakakisResult
}

// YannakakisResult is the acyclic fast path's report: a full semijoin
// reduction along one GYO join tree per component, then a bottom-up
// join of the reduced relations along the same trees.
type YannakakisResult struct {
	// Strategy is the binary join-tree strategy the join phase follows
	// (leaves are original relation indexes); executing it on the
	// unreduced database yields the same R_D at binary-plan cost.
	Strategy *strategy.Node
	// Tau is Σ intermediate join sizes on the reduced database — the
	// quantity comparable with the subspace optima.
	Tau int
	// Intermediates holds the join-phase intermediate sizes in
	// evaluation order; after full reduction every within-component
	// intermediate is bounded by the component's output.
	Intermediates []int
	// MaxIntermediate is the largest entry of Intermediates (0 for a
	// single-relation database).
	MaxIntermediate int
	// Semijoins is the reduction program length 2·Σ(|component|−1), and
	// SemijoinTuples the tuples those semijoins materialized — exactly
	// what the reduction charged the guard's tuple ledger.
	Semijoins      int
	SemijoinTuples int
	// Output is the full join's size |R_D|.
	Output int
}

// Complete reports whether every phase of the analysis ran to the end.
func (a *Analysis) Complete() bool { return len(a.Truncated) == 0 }

// Result returns the optimization result for the given space, if present.
func (a *Analysis) Result(s optimizer.Space) (optimizer.Result, bool) {
	for _, r := range a.Results {
		if r.Space == s {
			return r, true
		}
	}
	return optimizer.Result{}, false
}

// Analyze checks conditions, derives certificates and optimizes in every
// subspace.
func Analyze(db *database.Database) (*Analysis, error) {
	return AnalyzeGuarded(db, nil)
}

// AnalyzeGuarded is Analyze under resource governance. Every phase —
// materializing R_D, checking conditions, optimizing each subspace —
// charges the guard, and a phase that trips a budget is recorded in the
// returned Analysis's Truncated list while the remaining phases are
// still attempted (a deadline kills them all quickly; an exhausted
// tuple budget often still lets the memo-backed phases finish). The
// analysis fails outright — a nil Analysis and the typed governance
// error — only when even the condition profile could not be computed,
// since nothing reportable exists at that point.
//
// A nil guard makes it equivalent to Analyze.
func AnalyzeGuarded(db *database.Database, g *guard.Guard) (*Analysis, error) {
	return AnalyzeObserved(db, g, nil)
}

// AnalyzeObserved is AnalyzeGuarded with observability: the recorder
// (nil-safe) receives begin/end events and a `phase.<name>` wall-time
// timer per analysis phase, plus every counter the instrumented
// evaluator and optimizers emit. A nil recorder makes it equivalent to
// AnalyzeGuarded.
func AnalyzeObserved(db *database.Database, g *guard.Guard, rec *obs.Recorder) (*Analysis, error) {
	if err := db.Validate(); err != nil {
		return nil, err
	}
	return AnalyzeEvaluator(database.NewEvaluator(db).WithGuard(g).WithRecorder(rec))
}

// AnalyzeEvaluator runs the full analysis against a caller-supplied
// evaluator — governed by whatever guard and recorder are attached to
// it — so a prewarmed memo (PrewarmConnectedObserved) is reused instead
// of being recomputed. This is the entry point the bench pipeline
// times.
//
// The four subspace dynamic programs run concurrently over the shared
// evaluator (which is safe for concurrent use; racing DPs that miss on
// the same subset materialize it once via the memo's in-flight latch).
// The results are identical to a sequential run — each DP is
// deterministic and evaluator memoization never changes sizes, only who
// pays the wall-clock — and they are reported in the canonical order
// whatever order the goroutines finish in. Callers that need the
// strictly ordered per-phase event stream (one subspace at a time) use
// AnalyzeEvaluatorSequential.
func AnalyzeEvaluator(ev *database.Evaluator) (*Analysis, error) {
	return analyzeEvaluator(ev, true)
}

// AnalyzeEvaluatorSequential is AnalyzeEvaluator with the four subspace
// optimizations run one at a time on the calling goroutine — the
// baseline the bench pipeline's analysis section compares the parallel
// pipeline against, and the mode the CLI's -parallel-spaces=false
// selects for strictly ordered traces.
func AnalyzeEvaluatorSequential(ev *database.Evaluator) (*Analysis, error) {
	return analyzeEvaluator(ev, false)
}

func analyzeEvaluator(ev *database.Evaluator, parallel bool) (*Analysis, error) {
	db := ev.Database()
	if err := db.Validate(); err != nil {
		return nil, err
	}
	g, rec := ev.Guard(), ev.Recorder()
	an := &Analysis{}

	endPhase := beginPhase(g, rec, "materialize")
	var nonEmpty bool
	if err := func() (err error) {
		defer guard.Trap(&err)
		nonEmpty = ev.ResultNonEmpty()
		return nil
	}(); err != nil {
		endPhase(err)
		return nil, err
	}
	endPhase(nil)

	endPhase = beginPhase(g, rec, "conditions")
	profile := Profile{Connected: db.Connected(), ResultNonEmpty: nonEmpty}
	if err := func() (err error) {
		defer guard.Trap(&err)
		profile.Reports = conditions.CheckAll(ev)
		return nil
	}(); err != nil {
		endPhase(err)
		return nil, err
	}
	endPhase(nil)
	an.Profile = profile
	an.Certificates = Certify(profile)

	spaces := optimizer.DPSpaces()
	outcomes := make([]spaceOutcome, len(spaces))
	if parallel {
		optimizeSpacesParallel(ev, spaces, outcomes)
	} else {
		for i, sp := range spaces {
			phase := "optimize:" + sp.String()
			endPhase = beginPhase(g, rec, phase)
			res, err := optimizer.Optimize(ev, sp)
			endPhase(err)
			outcomes[i] = spaceOutcome{res: res, err: err}
		}
	}
	for i, sp := range spaces {
		res, err := outcomes[i].res, outcomes[i].err
		if err == optimizer.ErrEmptySpace {
			continue
		}
		if guard.Tripped(err) {
			an.Truncated = append(an.Truncated,
				Truncation{Phase: "optimize:" + sp.String(), Err: err})
			continue
		}
		if err != nil {
			return nil, err
		}
		an.Results = append(an.Results, res)
	}

	// The acyclic fast path: when every component of the scheme is
	// α-acyclic, run the governed semijoin reduction and Yannakakis join
	// as a fifth strategy space, reported beside the binary-plan optima.
	if db.Graph().AcyclicComponents() {
		phase := "optimize:" + optimizer.SpaceYannakakis.String()
		endPhase = beginPhase(g, rec, phase)
		yr, err := runYannakakis(db, g, rec)
		endPhase(err)
		switch {
		case guard.Tripped(err):
			an.Truncated = append(an.Truncated, Truncation{Phase: phase, Err: err})
		case err != nil:
			return nil, err
		default:
			an.Yannakakis = yr
		}
	}
	return an, nil
}

// runYannakakis executes the governed reduction + join and folds the
// outcome into the analysis's report shape.
func runYannakakis(db *database.Database, g *guard.Guard, rec *obs.Recorder) (*YannakakisResult, error) {
	ev, err := semijoin.YannakakisGuarded(db, g, rec)
	if err != nil {
		return nil, err
	}
	output := 0
	if ev.Result != nil {
		output = ev.Result.Size()
	}
	semiTuples := 0
	for _, s := range ev.Reduction.Sizes {
		semiTuples += s
	}
	return &YannakakisResult{
		Strategy:        ev.Strategy,
		Tau:             ev.Tau(),
		Intermediates:   ev.JoinSizes,
		MaxIntermediate: ev.MaxIntermediate(),
		Semijoins:       ev.Reduction.Semijoins,
		SemijoinTuples:  semiTuples,
		Output:          output,
	}, nil
}

// spaceOutcome is one subspace optimization's result as collected from
// its goroutine (or from the sequential loop).
type spaceOutcome struct {
	res optimizer.Result
	err error
}

// optimizeSpacesParallel runs one Optimize goroutine per subspace
// against the shared evaluator, filling outcomes by index. The guard
// and recorder phase is the single "optimize:parallel" for the whole
// fan-out — per-goroutine SetPhase would interleave arbitrarily — and
// each subspace emits its own begin/end event pair with an explicit
// Phase so traces still delimit every DP. Wall time for the fan-out
// lands in the `analyze.parallel.wall` timer; the per-space
// `dp.<space>.wall` timers (ticking inside Optimize) keep measuring
// each DP individually.
func optimizeSpacesParallel(ev *database.Evaluator, spaces []optimizer.Space, outcomes []spaceOutcome) {
	g, rec := ev.Guard(), ev.Recorder()
	endPhase, phaseSpan := beginPhaseSpan(g, rec, "optimize:parallel")
	watch := rec.Timer(obs.MetricAnalyzeParallelWall).Start()
	var wg sync.WaitGroup
	for i, sp := range spaces {
		wg.Add(1)
		go func(i int, sp optimizer.Space) {
			defer wg.Done()
			// Panic boundary: Optimize traps guard aborts itself, so this
			// catches only unexpected panics, which must surface as errors
			// on the collecting goroutine instead of killing the process.
			defer func() {
				if err := guard.Recovered(recover()); err != nil {
					outcomes[i].err = err
				}
			}()
			name := obs.SpanOptimizeSpace(sp.String())
			rec.Emit(obs.Event{Kind: "begin", Name: name, Phase: "optimize:parallel"})
			// StartChild, not StartSpan: sibling goroutines must parent to
			// the fan-out's phase span, never to each other's open spans.
			span := phaseSpan.StartChild(name)
			res, err := optimizer.Optimize(ev, sp)
			e := obs.Event{Kind: "end", Name: name, Phase: "optimize:parallel"}
			if err != nil {
				e.Err = err.Error()
				span.Fail(err)
			}
			span.End()
			rec.Emit(e)
			outcomes[i] = spaceOutcome{res: res, err: err}
		}(i, sp)
	}
	wg.Wait()
	watch.Stop()
	// The phase ends with the first governance trip, if any, so the
	// guard.trips counter and the end event's Err reflect the fan-out.
	var tripped error
	for i := range outcomes {
		if guard.Tripped(outcomes[i].err) {
			tripped = outcomes[i].err
			break
		}
	}
	endPhase(tripped)
}

// beginPhase labels the guard and recorder with the phase, emits the
// begin event (carrying the guard's spend at the boundary, so per-phase
// consumption is the delta between successive events), starts the
// phase's wall timer, and returns the closer that emits the matching
// end event. Both g and rec may be nil.
func beginPhase(g *guard.Guard, rec *obs.Recorder, name string) func(error) {
	end, _ := beginPhaseSpan(g, rec, name)
	return end
}

// beginPhaseSpan is beginPhase plus a trace span: the phase opens a
// span named `phase:<name>` (stack-parented, so phases nest under
// whatever request or phase span is already open on the recorder), and
// the closer stamps the span with the guard-ledger delta accumulated
// across the phase before ending it. The span is returned so parallel
// fan-outs can hang per-goroutine children off it with StartChild.
func beginPhaseSpan(g *guard.Guard, rec *obs.Recorder, name string) (func(error), *obs.Span) {
	g.SetPhase(name)
	rec.SetPhase(name)
	if rec == nil {
		return func(error) {}, nil
	}
	snap := g.Snapshot()
	rec.Emit(obs.Event{Kind: "begin", Name: name,
		Tuples: snap.Tuples.Spent, States: snap.States.Spent, Steps: snap.Steps.Spent})
	sp := rec.StartSpan(obs.SpanPhase(name))
	watch := rec.Timer(obs.MetricPhaseWall(name)).Start()
	return func(err error) {
		after := g.Snapshot()
		e := obs.Event{Kind: "end", Name: name, DurNS: watch.Stop().Nanoseconds(),
			Tuples: after.Tuples.Spent, States: after.States.Spent, Steps: after.Steps.Spent}
		sp.AddDelta(after.Tuples.Spent-snap.Tuples.Spent,
			after.States.Spent-snap.States.Spent,
			after.Steps.Spent-snap.Steps.Spent)
		if err != nil {
			e.Err = err.Error()
			sp.Fail(err)
			if guard.Tripped(err) {
				rec.Counter(obs.MetricGuardTrips).Inc()
			}
		}
		sp.End()
		rec.Emit(e)
	}, sp
}

// Certify derives the theorem certificates implied by a condition
// profile; it is pure so the randomized experiments can reuse it.
func Certify(p Profile) []Certificate {
	if !p.Connected || !p.ResultNonEmpty {
		return nil
	}
	var out []Certificate
	if p.Holds(conditions.C1Strict) {
		out = append(out, Certificate{
			Theorem: Theorem1,
			Space:   optimizer.SpaceLinearNoCP,
			Guarantee: "every τ-optimum linear strategy avoids Cartesian products; " +
				"searching linear-no-CP strategies attains the linear optimum",
		})
	}
	if p.Holds(conditions.C1) && p.Holds(conditions.C2) {
		out = append(out, Certificate{
			Theorem: Theorem2,
			Space:   optimizer.SpaceNoCP,
			Guarantee: "some τ-optimum strategy uses no Cartesian products; " +
				"searching no-CP strategies attains the global optimum",
		})
	}
	if p.Holds(conditions.C3) {
		out = append(out, Certificate{
			Theorem: Theorem3,
			Space:   optimizer.SpaceLinearNoCP,
			Guarantee: "some τ-optimum strategy is linear and uses no Cartesian products; " +
				"searching linear-no-CP strategies attains the global optimum",
		})
	}
	return out
}

// VerifyCertificates checks every certificate in the analysis against
// the measured optima, returning a descriptive error for the first
// violation. A nil return means the paper's theorems held on this
// instance — the cross-check run by the randomized validation
// experiments (E-thm1/2/3).
//
// On a truncated analysis (resource guard cut one or more optimizer
// phases) a certificate whose optima are missing is skipped rather than
// reported as an error: absence of evidence from a budgeted run is not
// a theorem violation.
func VerifyCertificates(a *Analysis) error {
	all, hasAll := a.Result(optimizer.SpaceAll)
	lin, hasLin := a.Result(optimizer.SpaceLinear)
	nocp, hasNoCP := a.Result(optimizer.SpaceNoCP)
	lnc, hasLNC := a.Result(optimizer.SpaceLinearNoCP)
	for _, c := range a.Certificates {
		switch c.Theorem {
		case Theorem1:
			if !hasLin || !hasLNC {
				if !a.Complete() {
					continue
				}
				return fmt.Errorf("theorem 1: missing optimization results")
			}
			if lnc.Cost != lin.Cost {
				return fmt.Errorf("theorem 1 violated: linear-no-CP optimum %d ≠ linear optimum %d",
					lnc.Cost, lin.Cost)
			}
		case Theorem2:
			if !hasAll || !hasNoCP {
				if !a.Complete() {
					continue
				}
				return fmt.Errorf("theorem 2: missing optimization results")
			}
			if nocp.Cost != all.Cost {
				return fmt.Errorf("theorem 2 violated: no-CP optimum %d ≠ global optimum %d",
					nocp.Cost, all.Cost)
			}
		case Theorem3:
			if !hasAll || !hasLNC {
				if !a.Complete() {
					continue
				}
				return fmt.Errorf("theorem 3: missing optimization results")
			}
			if lnc.Cost != all.Cost {
				return fmt.Errorf("theorem 3 violated: linear-no-CP optimum %d ≠ global optimum %d",
					lnc.Cost, all.Cost)
			}
		}
	}
	return nil
}
