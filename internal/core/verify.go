package core

import (
	"fmt"

	"multijoin/internal/database"
	"multijoin/internal/guard"
	"multijoin/internal/obs"
	"multijoin/internal/strategy"
)

// VerifyTheorem1Exhaustive checks Theorem 1's conclusion in its exact
// form: *every* τ-optimum linear strategy for the database avoids
// Cartesian products. (VerifyCertificates checks the weaker—but
// certificate-relevant—cost equality between the linear and
// linear-no-CP subspaces.) It enumerates the linear space, so it is
// meant for the small databases of the randomized validation runs.
func VerifyTheorem1Exhaustive(ev *database.Evaluator) (err error) {
	defer guard.Trap(&err)
	db := ev.Database()
	g := db.Graph()
	rec := ev.Recorder()
	cEnum := rec.Counter(obs.MetricVerifyThm1Strategies)
	defer rec.Timer(obs.MetricVerifyThm1Wall).Start().Stop()
	best := -1
	strategy.EnumerateLinear(db.All(), func(n *strategy.Node) bool {
		cEnum.Inc()
		if c := n.Cost(ev); best == -1 || c < best {
			best = c
		}
		return true
	})
	var bad *strategy.Node
	strategy.EnumerateLinear(db.All(), func(n *strategy.Node) bool {
		cEnum.Inc()
		if n.Cost(ev) == best && n.UsesCartesian(g) {
			bad = n
			return false
		}
		return true
	})
	if bad != nil {
		rec.Counter(obs.MetricVerifyCounterexamples).Inc()
		return fmt.Errorf("theorem 1 violated: τ-optimum linear strategy %s (cost %d) uses a Cartesian product",
			bad.Render(db), best)
	}
	return nil
}

// VerifyTheorem2Exhaustive checks Theorem 2's conclusion by enumeration:
// some τ-optimum strategy does not use Cartesian products.
func VerifyTheorem2Exhaustive(ev *database.Evaluator) (err error) {
	defer guard.Trap(&err)
	db := ev.Database()
	g := db.Graph()
	rec := ev.Recorder()
	cEnum := rec.Counter(obs.MetricVerifyThm2Strategies)
	defer rec.Timer(obs.MetricVerifyThm2Wall).Start().Stop()
	best := -1
	strategy.EnumerateAll(db.All(), func(n *strategy.Node) bool {
		cEnum.Inc()
		if c := n.Cost(ev); best == -1 || c < best {
			best = c
		}
		return true
	})
	found := false
	strategy.EnumerateAll(db.All(), func(n *strategy.Node) bool {
		cEnum.Inc()
		if n.Cost(ev) == best && !n.UsesCartesian(g) {
			found = true
			return false
		}
		return true
	})
	if !found {
		rec.Counter(obs.MetricVerifyCounterexamples).Inc()
		return fmt.Errorf("theorem 2 violated: no τ-optimum strategy (cost %d) is Cartesian-product-free", best)
	}
	return nil
}

// VerifyTheorem3Exhaustive checks Theorem 3's conclusion by enumeration:
// some τ-optimum strategy is linear and does not use Cartesian products.
func VerifyTheorem3Exhaustive(ev *database.Evaluator) (err error) {
	defer guard.Trap(&err)
	db := ev.Database()
	g := db.Graph()
	rec := ev.Recorder()
	cEnum := rec.Counter(obs.MetricVerifyThm3Strategies)
	defer rec.Timer(obs.MetricVerifyThm3Wall).Start().Stop()
	best := -1
	strategy.EnumerateAll(db.All(), func(n *strategy.Node) bool {
		cEnum.Inc()
		if c := n.Cost(ev); best == -1 || c < best {
			best = c
		}
		return true
	})
	found := false
	strategy.EnumerateAll(db.All(), func(n *strategy.Node) bool {
		cEnum.Inc()
		if n.Cost(ev) == best && n.IsLinear() && !n.UsesCartesian(g) {
			found = true
			return false
		}
		return true
	})
	if !found {
		rec.Counter(obs.MetricVerifyCounterexamples).Inc()
		return fmt.Errorf("theorem 3 violated: no τ-optimum strategy (cost %d) is linear and Cartesian-product-free", best)
	}
	return nil
}
