package core

import (
	"strings"
	"testing"

	"multijoin/internal/database"
	"multijoin/internal/paperex"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
)

func TestPlanExprRoundTrip(t *testing.T) {
	db := paperex.Example1() // 4 relations
	for _, expr := range []string{
		"(((0 1) 2) 3)",
		"((0 1) (2 3))",
		"((3 0) (1 2))",
	} {
		s, err := Plan{Expr: expr}.Strategy(db)
		if err != nil {
			t.Fatalf("%s: %v", expr, err)
		}
		if got := EncodePlanExpr(s); got != expr {
			t.Errorf("round trip %s → %s", expr, got)
		}
	}
}

func TestPlanRejectsMalformedExprs(t *testing.T) {
	db := paperex.Example1()
	for _, expr := range []string{
		"",          // empty
		"(0 1",      // unclosed
		"(0 0)",     // duplicate leaf
		"(0 1) 2",   // trailing garbage
		"((0 1) 9)", // index out of range
		"((0 1) 2)", // incomplete cover (4 relations)
		"(0 (1 x))", // non-numeric leaf
		"()",        // empty pair
		"(((0 1) 2) 3) extra",
	} {
		if _, err := (Plan{Expr: expr}).Strategy(db); err == nil {
			t.Errorf("plan %q accepted", expr)
		}
	}
}

func TestPlanNameFree(t *testing.T) {
	db := paperex.Example1()
	best := strategy.MustParse(db, "((R1 R2) (R3 R4))")
	p := NewPlan(best, "dp", 42, false)
	if strings.ContainsAny(p.Expr, "R") {
		t.Fatalf("plan expr leaks relation names: %q", p.Expr)
	}
	back, err := p.Strategy(db)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(best) {
		t.Fatalf("plan round trip changed the tree: %s vs %s", back, best)
	}
}

// fingerDB builds a tiny named database from rows for fingerprint tests.
func fingerDB(t *testing.T, rows1, rows2 [][]string) *database.Database {
	t.Helper()
	mk := func(name, attrs string, rows [][]string) *relation.Relation {
		r := relation.New(name, relation.SchemaFromString(attrs))
		for _, row := range rows {
			vals := make([]relation.Value, len(row))
			for i, v := range row {
				vals[i] = relation.Value(v)
			}
			r.InsertRow(vals)
		}
		return r
	}
	return database.New(mk("R1", "AB", rows1), mk("R2", "BC", rows2))
}

func TestFingerprintInvariance(t *testing.T) {
	base := fingerDB(t, [][]string{{"a", "1"}, {"b", "2"}}, [][]string{{"1", "x"}})
	same := fingerDB(t, [][]string{{"a", "1"}, {"b", "2"}}, [][]string{{"1", "x"}})
	if FingerprintDB(base) != FingerprintDB(same) {
		t.Fatal("identical databases fingerprint differently")
	}

	// Data changes move the stats digest but not the shape digest.
	grown := fingerDB(t, [][]string{{"a", "1"}, {"b", "2"}, {"c", "3"}}, [][]string{{"1", "x"}})
	fb, fg := FingerprintDB(base), FingerprintDB(grown)
	if fb.Shape != fg.Shape {
		t.Fatal("data change moved the shape digest")
	}
	if fb.Stats == fg.Stats {
		t.Fatal("data change did not move the stats digest")
	}

	// Same cardinalities, different distinct counts: still a stats move —
	// the estimator would plan differently.
	skew := fingerDB(t, [][]string{{"a", "1"}, {"b", "1"}}, [][]string{{"1", "x"}})
	if FingerprintDB(base).Stats == FingerprintDB(skew).Stats {
		t.Fatal("distinct-count change did not move the stats digest")
	}

	// Shape changes (different attribute sets) move the shape digest.
	other := database.New(
		relation.New("R1", relation.SchemaFromString("AB")),
		relation.New("R2", relation.SchemaFromString("BD")),
	)
	if FingerprintDB(base).Shape == FingerprintDB(other).Shape {
		t.Fatal("schema change did not move the shape digest")
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := fingerDB(t, [][]string{{"a", "1"}}, [][]string{{"1", "x"}})
	b := database.New(
		relation.New("Left", relation.SchemaFromString("AB")),
		relation.New("Right", relation.SchemaFromString("BC")),
	)
	b.Relation(0).InsertRow([]relation.Value{"a", "1"})
	b.Relation(1).InsertRow([]relation.Value{"1", "x"})
	if FingerprintDB(a) != FingerprintDB(b) {
		t.Fatal("renaming relations changed the fingerprint")
	}
}
