package core

import (
	"fmt"
	"io"
	"strings"

	"multijoin/internal/database"
	"multijoin/internal/optimizer"
)

// WriteReport renders the analysis as the standard human-readable report
// used by cmd/joinopt and the examples: the condition profile, the
// theorem certificates, and the per-subspace optima with strategies
// rendered against the database's relation names.
func WriteReport(w io.Writer, db *database.Database, an *Analysis) {
	fmt.Fprintf(w, "scheme connected: %v    R_D nonempty: %v\n",
		an.Profile.Connected, an.Profile.ResultNonEmpty)
	fmt.Fprintln(w, "conditions:")
	for _, rep := range an.Profile.Reports {
		if rep.Holds {
			fmt.Fprintf(w, "  %-3s holds\n", rep.Cond)
		} else {
			fmt.Fprintf(w, "  %s\n", rep.Witness)
		}
	}
	fmt.Fprintln(w, "certificates:")
	if len(an.Certificates) == 0 {
		fmt.Fprintln(w, "  none — no theorem guarantees a restricted search is safe here")
	}
	for _, c := range an.Certificates {
		fmt.Fprintf(w, "  Theorem %d ⟹ %s space: %s\n", int(c.Theorem), c.Space, c.Guarantee)
	}
	fmt.Fprintln(w, "optima per search space:")
	for _, res := range an.Results {
		sys := ""
		if names := res.Space.Systems(); len(names) > 0 {
			sys = "   [" + strings.Join(names, ", ") + "]"
		}
		fmt.Fprintf(w, "  %-20s τ=%-8d %s%s\n", res.Space, res.Cost, res.Strategy.Render(db), sys)
	}
	if _, ok := an.Result(optimizer.SpaceLinearNoCP); !ok && an.Complete() {
		fmt.Fprintln(w, "  linear-no-cartesian: empty subspace for this scheme")
	}
	if y := an.Yannakakis; y != nil {
		fmt.Fprintf(w, "  %-20s τ=%-8d %s\n",
			optimizer.SpaceYannakakis, y.Tau, y.Strategy.Render(db))
		fmt.Fprintf(w, "    acyclic fast path: %d semijoins (%d tuples), max intermediate %d, output %d\n",
			y.Semijoins, y.SemijoinTuples, y.MaxIntermediate, y.Output)
	}
	if !an.Complete() {
		fmt.Fprintln(w, "truncated phases (resource guard):")
		for _, tr := range an.Truncated {
			fmt.Fprintf(w, "  ⚠ %s cut short: %v\n", tr.Phase, tr.Err)
		}
	}
}
