package core

import (
	"fmt"
	"strconv"
	"strings"

	"multijoin/internal/database"
	"multijoin/internal/relation"
	"multijoin/internal/strategy"
)

// Cacheable plan representation. A served system cannot afford to rerun
// the subset DP for every request, so an optimization outcome must be
// storable under a key that says exactly when reuse is sound. The key is
// a Fingerprint — hypergraph shape plus a statistics digest — and the
// value is a Plan: a name-free, index-based rendering of the strategy
// tree together with how it was obtained. Any database with the same
// fingerprint presents the planner with the same relation count, the
// same attribute structure and the same statistics, so the cached join
// order applies verbatim; a change to any relation's data moves the
// stats digest and silently invalidates every plan cached under the old
// key.

// Fingerprint identifies a database for plan-cache purposes.
type Fingerprint struct {
	// Shape digests the hypergraph: relation count and each relation's
	// attribute set, in scheme order. Names are deliberately excluded —
	// plans are index-based, so renaming relations does not invalidate
	// them.
	Shape uint64 `json:"shape"`
	// Stats digests the statistics the cost-based planner consumes:
	// per-relation cardinalities and per-attribute distinct-value
	// counts. Inserting, deleting or rewriting tuples moves this digest.
	Stats uint64 `json:"stats"`
}

// String renders the fingerprint as two fixed-width hex words, the form
// used in logs and cache-debug endpoints.
func (f Fingerprint) String() string {
	return fmt.Sprintf("%016x-%016x", f.Shape, f.Stats)
}

// FNV-1a, written out so the digest is pinned by this file rather than
// by hash/fnv internals staying stable across Go releases.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime
	}
	return (h ^ 0xFF) * fnvPrime // terminator so "ab","c" ≠ "a","bc"
}

func fnvInt(h uint64, v int) uint64 {
	return (h ^ uint64(uint32(v))) * fnvPrime
}

// FingerprintDB computes the database's plan-cache fingerprint in one
// pass over the data. The statistics digested here are exactly the ones
// estimate.Catalog gathers (cardinality, per-attribute distinct counts),
// so two databases with equal fingerprints are indistinguishable to
// every planning rung from the DP down.
func FingerprintDB(db *database.Database) Fingerprint {
	shape := fnvInt(fnvOffset, db.Len())
	stats := fnvInt(fnvOffset, db.Len())
	for i := 0; i < db.Len(); i++ {
		r := db.Relation(i)
		attrs := r.Schema().Attrs()
		shape = fnvInt(shape, len(attrs))
		for _, a := range attrs {
			shape = fnvString(shape, string(a))
		}
		stats = fnvInt(stats, r.Size())
		for col := range attrs {
			distinct := make(map[relation.Value]struct{})
			for _, row := range r.Rows() {
				distinct[row[col]] = struct{}{}
			}
			stats = fnvInt(stats, len(distinct))
		}
	}
	return Fingerprint{Shape: shape, Stats: stats}
}

// Plan is the serializable, database-independent form of a chosen
// strategy: the join tree over relation indexes, the method that chose
// it, and its cost at planning time.
type Plan struct {
	// Expr is the strategy in index-based parenthesized form, e.g.
	// "((0 1) 2)" — name-free so it binds to any database with the same
	// fingerprint.
	Expr string `json:"expr"`
	// Method names the ladder rung that produced the plan: "exhaustive",
	// "dp", "greedy" or "estimate".
	Method string `json:"method"`
	// Cost is τ(S) at planning time; for estimate plans it is the
	// estimated τ rounded to integer.
	Cost int64 `json:"cost"`
	// Estimated marks plans costed by the statistics model rather than
	// by execution.
	Estimated bool `json:"estimated"`
}

// NewPlan renders a strategy into its cacheable form.
func NewPlan(s *strategy.Node, method string, cost int64, estimated bool) Plan {
	return Plan{Expr: EncodePlanExpr(s), Method: method, Cost: cost, Estimated: estimated}
}

// EncodePlanExpr renders a strategy tree in the index-based form Plan
// stores: leaves are decimal relation indexes, steps are
// space-separated parenthesized pairs.
func EncodePlanExpr(n *strategy.Node) string {
	var b strings.Builder
	writePlanExpr(&b, n)
	return b.String()
}

func writePlanExpr(b *strings.Builder, n *strategy.Node) {
	if n.IsLeaf() {
		b.WriteString(strconv.Itoa(n.Set().First()))
		return
	}
	b.WriteByte('(')
	writePlanExpr(b, n.Left())
	b.WriteByte(' ')
	writePlanExpr(b, n.Right())
	b.WriteByte(')')
}

// Strategy rebinds the plan to a database, validating that the tree is
// well formed, covers every relation exactly once, and mentions no
// index outside the database. The input is untrusted (it may come from
// a cache shared with older processes), so every violation is an error,
// never a panic.
func (p Plan) Strategy(db *database.Database) (*strategy.Node, error) {
	node, rest, err := parsePlanExpr(p.Expr, db.Len())
	if err != nil {
		return nil, fmt.Errorf("core: plan %q: %w", p.Expr, err)
	}
	if strings.TrimSpace(rest) != "" {
		return nil, fmt.Errorf("core: plan %q: trailing input %q", p.Expr, rest)
	}
	if node.Set() != db.All() {
		return nil, fmt.Errorf("core: plan %q covers %v, not the whole database", p.Expr, node.Set())
	}
	return node, nil
}

// parsePlanExpr parses one term (a leaf index or a parenthesized pair)
// from the front of src, returning the unconsumed remainder.
func parsePlanExpr(src string, n int) (*strategy.Node, string, error) {
	src = strings.TrimLeft(src, " ")
	if src == "" {
		return nil, "", fmt.Errorf("unexpected end of expression")
	}
	if src[0] == '(' {
		left, rest, err := parsePlanExpr(src[1:], n)
		if err != nil {
			return nil, "", err
		}
		right, rest, err := parsePlanExpr(rest, n)
		if err != nil {
			return nil, "", err
		}
		rest = strings.TrimLeft(rest, " ")
		if rest == "" || rest[0] != ')' {
			return nil, "", fmt.Errorf("missing closing parenthesis")
		}
		if !left.Set().Disjoint(right.Set()) {
			return nil, "", fmt.Errorf("subtrees %v and %v overlap", left.Set(), right.Set())
		}
		return strategy.Combine(left, right), rest[1:], nil
	}
	end := 0
	for end < len(src) && src[end] >= '0' && src[end] <= '9' {
		end++
	}
	if end == 0 {
		return nil, "", fmt.Errorf("expected relation index at %q", src)
	}
	idx, err := strconv.Atoi(src[:end])
	if err != nil {
		return nil, "", err
	}
	if idx < 0 || idx >= n {
		return nil, "", fmt.Errorf("relation index %d out of range [0,%d)", idx, n)
	}
	return strategy.Leaf(idx), src[end:], nil
}
