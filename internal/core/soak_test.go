package core

import (
	"context"
	"math/rand"
	"testing"

	"multijoin/internal/database"
	"multijoin/internal/gen"
	"multijoin/internal/guard"
	"multijoin/internal/optimizer"
	"multijoin/internal/semijoin"
	"multijoin/internal/strategy"
)

// TestSoakEndToEnd is the wide randomized cross-validation pass: many
// databases drawn from every generator family, each run through the full
// pipeline — analysis, certificate verification, all four optimizers,
// both rewrites, the reducer — with every internal consistency property
// asserted. It is the closest thing to a fuzzer the deterministic model
// admits, and it runs in normal `go test` (kept under a few seconds by
// sizing; skipped in -short).
func TestSoakEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2026))
	for trial := 0; trial < 150; trial++ {
		db := soakDatabase(rng, trial)
		ev := database.NewEvaluator(db)

		// The soak runs governed with budgets far above any healthy
		// trial's spend: a regression that makes evaluation blow up now
		// fails fast with a typed budget error instead of wedging the
		// suite.
		g := guard.New(context.Background(), guard.Limits{MaxTuples: 1 << 22, MaxStates: 1 << 20})
		an, err := AnalyzeGuarded(db, g)
		if err != nil {
			t.Fatalf("trial %d: analyze: %v", trial, err)
		}
		if !an.Complete() {
			t.Fatalf("trial %d: soak budget tripped: %v", trial, an.Truncated[0].Err)
		}
		if err := VerifyCertificates(an); err != nil {
			t.Fatalf("trial %d: %v\n%v", trial, err, db)
		}

		// Optimizers: containments and validity.
		all, aok := an.Result(optimizer.SpaceAll)
		if !aok {
			t.Fatalf("trial %d: no SpaceAll result", trial)
		}
		for _, res := range an.Results {
			if err := res.Strategy.Validate(db.All()); err != nil {
				t.Fatalf("trial %d: %s invalid: %v", trial, res.Space, err)
			}
			if res.Cost < all.Cost {
				t.Fatalf("trial %d: %s beat the full space", trial, res.Space)
			}
			if got := res.Strategy.Cost(ev); got != res.Cost {
				t.Fatalf("trial %d: %s reported %d actual %d", trial, res.Space, res.Cost, got)
			}
		}

		// Rewrites: always land in their subspaces; under the certified
		// conditions they must not increase τ.
		s := randomSoakStrategy(rng, db)
		noCP := AvoidCPRewrite(ev, s)
		if !noCP.AvoidsCartesian(db.Graph()) {
			t.Fatalf("trial %d: AvoidCPRewrite missed the subspace", trial)
		}
		certifiedT2 := false
		certifiedT3 := false
		for _, c := range an.Certificates {
			if c.Theorem == Theorem2 {
				certifiedT2 = true
			}
			if c.Theorem == Theorem3 {
				certifiedT3 = true
			}
		}
		if certifiedT2 && noCP.Cost(ev) > s.Cost(ev) {
			t.Fatalf("trial %d: rewrite raised τ despite C1∧C2", trial)
		}
		if db.Connected() && !noCP.UsesCartesian(db.Graph()) {
			lin := LinearizeRewrite(ev, noCP)
			if !lin.IsLinear() || lin.UsesCartesian(db.Graph()) {
				t.Fatalf("trial %d: LinearizeRewrite missed the subspace", trial)
			}
			if certifiedT3 && lin.Cost(ev) > noCP.Cost(ev) {
				t.Fatalf("trial %d: linearization raised τ despite C3", trial)
			}
		}

		// Reducer invariants where applicable.
		if reduced, err := semijoin.FullReduce(db); err == nil {
			if !semijoin.PairwiseConsistent(reduced) {
				t.Fatalf("trial %d: reduction inconsistent", trial)
			}
			before := ev.Result()
			after := database.NewEvaluator(reduced).Result()
			if !before.Equal(after) {
				t.Fatalf("trial %d: reduction changed R_D", trial)
			}
		}
	}
}

func soakDatabase(rng *rand.Rand, trial int) *database.Database {
	n := 3 + rng.Intn(3)
	switch trial % 5 {
	case 0:
		return gen.Uniform(rng, gen.Schemes(gen.Chain, n), 4, 3)
	case 1:
		return gen.Diagonal(rng, gen.RandomConnectedSchemes(rng, n, 0.3), 7, 0.5)
	case 2:
		return gen.Zipf(rng, gen.Schemes(gen.Star, n), 6, 6, 1.5)
	case 3:
		return gen.Uniform(rng, gen.RandomAcyclicSchemes(rng, n), 4, 3)
	default:
		return gen.Uniform(rng, gen.Schemes(gen.Cycle, max(n, 3)), 4, 3)
	}
}

func randomSoakStrategy(rng *rand.Rand, db *database.Database) *strategy.Node {
	idx := rng.Perm(db.Len())
	var build func(part []int) *strategy.Node
	build = func(part []int) *strategy.Node {
		if len(part) == 1 {
			return strategy.Leaf(part[0])
		}
		cut := 1 + rng.Intn(len(part)-1)
		return strategy.Combine(build(part[:cut]), build(part[cut:]))
	}
	return build(idx)
}
