package core

import (
	"fmt"

	"multijoin/internal/database"
	"multijoin/internal/hypergraph"
	"multijoin/internal/strategy"
)

// This file implements the constructive content of the paper's proofs as
// strategy rewrites:
//
//   - AvoidCPRewrite follows Lemmas 2, 3 and 4: it pushes a strategy into
//     the Cartesian-product-avoiding subspace, never increasing τ when
//     the database satisfies C1 ∧ C2 with R_D ≠ ∅ (Theorem 2's proof).
//   - LinearizeRewrite follows Lemma 6: it flattens a
//     Cartesian-product-free strategy into a linear one, never increasing
//     τ when the database satisfies C3 (Theorem 3's proof).
//
// Both terminate unconditionally and always return strategies in the
// target subspace; only the cost guarantee depends on the conditions.
// The theorem-validation experiments run these rewrites on random
// strategies over condition-satisfying databases and assert the cost
// never increases — an executable re-proof of the lemmas.

// AvoidCPRewrite transforms s into a strategy for the same database that
// avoids Cartesian products (components individually, only the mandatory
// comp(D)−1 product steps). Under C1(𝒟) ∧ C2(𝒟) and R_D ≠ ∅ the result
// costs no more than s (Lemmas 2–4).
func AvoidCPRewrite(ev *database.Evaluator, s *strategy.Node) *strategy.Node {
	g := ev.Database().Graph()
	return avoidRec(ev, g, s)
}

// avoidRec returns a strategy for s.Set() that avoids Cartesian products,
// built by recursing into children and then applying the Lemma 2/3 moves
// at the root until its children are either unlinked or both connected.
func avoidRec(ev *database.Evaluator, g *hypergraph.Graph, s *strategy.Node) *strategy.Node {
	if s.IsLeaf() {
		return s
	}
	left := avoidRec(ev, g, s.Left())
	right := avoidRec(ev, g, s.Right())
	cur := strategy.Combine(left, right)

	for {
		d1, d2 := cur.Left().Set(), cur.Right().Set()
		if !g.Linked(d1, d2) {
			// Mandatory product of separate component groups: children
			// already avoid CPs, so cur does.
			return cur
		}
		c1, c2 := g.Connected(d1), g.Connected(d2)
		if c1 && c2 {
			// A genuine join of connected linked parts.
			return cur
		}
		var next *strategy.Node
		switch {
		case c1 && !c2:
			next = lemma2Move(ev, g, cur, d1, d2)
		case !c1 && c2:
			// Symmetric to Lemma 2 with the children swapped.
			next = lemma2Move(ev, g, strategy.Combine(cur.Right(), cur.Left()), d2, d1)
		default:
			next = lemma3Move(ev, g, cur, d1, d2)
		}
		// Each move strictly reduces comp(D1) + comp(D2), so the loop
		// terminates (Lemma 4's induction measure). Recurse into the new
		// children to restore their avoid-CP invariant before looping.
		cur = strategy.Combine(
			avoidRec(ev, g, next.Left()),
			avoidRec(ev, g, next.Right()))
	}
}

// lemma2Move applies the Figure 4 transformation: d1 is connected, d2 is
// unconnected and linked to d1, and the right subtree evaluates its
// components individually. A component E of d2 linked to d1 is plucked
// and grafted above the substrategy for d1.
func lemma2Move(ev *database.Evaluator, g *hypergraph.Graph, s *strategy.Node, d1, d2 hypergraph.Set) *strategy.Node {
	for _, e := range g.Components(d2) {
		if !g.Linked(d1, e) {
			continue
		}
		out, err := strategy.PluckAndGraft(s, e, d1)
		if err != nil {
			panic(fmt.Sprintf("core: lemma 2 move failed: %v", err))
		}
		return out
	}
	panic("core: lemma 2 precondition violated: no component of D2 linked to D1")
}

// lemma3Move applies the Figure 5 transformation: both children are
// unconnected and linked; pick linked components E1 ⊆ d1, E2 ⊆ d2 and
// merge them, choosing the direction the proof of Lemma 3 licenses: the
// one where the merged pair costs no more than the absorbing component
// (τ(R_E1 ⋈ R_E2) ≤ τ(R_E1) grafts E2 above E1). When C2 holds one
// direction always qualifies; otherwise we fall back to the cheaper
// direction, keeping the rewrite total.
func lemma3Move(ev *database.Evaluator, g *hypergraph.Graph, s *strategy.Node, d1, d2 hypergraph.Set) *strategy.Node {
	for _, e1 := range g.Components(d1) {
		for _, e2 := range g.Components(d2) {
			if !g.Linked(e1, e2) {
				continue
			}
			joined := ev.Size(e1.Union(e2))
			var out *strategy.Node
			var err error
			switch {
			case joined <= ev.Size(e1):
				// τ(E1⋈E2) ≤ τ(E1): pluck E2, graft above E1 (Fig. 5).
				out, err = strategy.PluckAndGraft(s, e2, e1)
			case joined <= ev.Size(e2):
				// Symmetric: pluck E1, graft above E2.
				out, err = strategy.PluckAndGraft(s, e1, e2)
			default:
				// C2 violated; no licensed direction. Stay total by
				// absorbing into the side that loses less.
				out, err = strategy.PluckAndGraft(s, e2, e1)
			}
			if err != nil {
				panic(fmt.Sprintf("core: lemma 3 move failed: %v", err))
			}
			return out
		}
	}
	panic("core: lemma 3 precondition violated: no linked component pair")
}

// LinearizeRewrite transforms a Cartesian-product-free strategy for a
// connected scheme into a linear Cartesian-product-free strategy. Under
// C3(𝒟) the result costs no more than s (Lemma 6: of the two transfers
// T1 and T2 in Figure 6, at least one does not increase τ, because
// (τ(T1)−τ(S)) + (τ(T2)−τ(S)) ≤ 0 under C3; we always take the cheaper).
//
// It panics if s uses a Cartesian product — callers reach the CP-free
// space first via AvoidCPRewrite or the optimizer.
func LinearizeRewrite(ev *database.Evaluator, s *strategy.Node) *strategy.Node {
	g := ev.Database().Graph()
	if s.UsesCartesian(g) {
		panic("core: LinearizeRewrite requires a Cartesian-product-free strategy")
	}
	return linearizeRec(ev, g, s)
}

func linearizeRec(ev *database.Evaluator, g *hypergraph.Graph, s *strategy.Node) *strategy.Node {
	if s.IsLeaf() {
		return s
	}
	// Termination with the min(T1, T2) rule: under C3, choosing T1 only
	// when it is strictly cheaper than T2 makes the pair (τ, |right
	// leaves|) strictly decrease lexicographically — if τ(T1) < τ(T2)
	// then the C3 sum inequality (τ(T1)−τ(S)) + (τ(T2)−τ(S)) ≤ 0 forces
	// τ(T1) < τ(S), and T2 (chosen on ties) shrinks the right subtree.
	// Without C3 that argument lapses, so after a generous budget we
	// force T2-only transfers, which terminate unconditionally; only the
	// cost guarantee is lost, matching the theorem's hypotheses.
	budget := s.Set().Len() * s.Set().Len() * 4
	cur := s
	for !cur.Left().IsLeaf() && !cur.Right().IsLeaf() {
		cur = lemma6Transfer(ev, g, cur, budget <= 0)
		budget--
	}
	// One child is now trivial; recurse into the other (Case 1).
	l, r := cur.Left(), cur.Right()
	if l.IsLeaf() {
		return strategy.Combine(linearizeRec(ev, g, r), l)
	}
	return strategy.Combine(linearizeRec(ev, g, l), r)
}

// lemma6Transfer performs one Figure 6 step at the root of s, whose
// children are both internal: it finds children D1′ of D1 and D2′ of D2
// that are linked, builds the two transfers
//
//	T1: pluck S_{D1′}, graft above S_{D2}
//	T2: pluck S_{D2′}, graft above S_{D1}
//
// and returns the cheaper (T2 on ties, or unconditionally when forceT2 is
// set). Both keep the strategy Cartesian-product-free.
func lemma6Transfer(ev *database.Evaluator, g *hypergraph.Graph, s *strategy.Node, forceT2 bool) *strategy.Node {
	sd1, sd2 := s.Left(), s.Right()
	d1p, d2p, ok := linkedChildPair(g, sd1, sd2)
	if !ok {
		panic("core: lemma 6 precondition violated: no linked child pair across the root")
	}
	t2, err := strategy.PluckAndGraft(s, d2p, sd1.Set())
	if err != nil {
		panic(fmt.Sprintf("core: lemma 6 T2 failed: %v", err))
	}
	if forceT2 {
		return t2
	}
	t1, err := strategy.PluckAndGraft(s, d1p, sd2.Set())
	if err != nil {
		panic(fmt.Sprintf("core: lemma 6 T1 failed: %v", err))
	}
	if t1.Cost(ev) < t2.Cost(ev) {
		return t1
	}
	return t2
}

// linkedChildPair returns sets of children d1′ ⊆ D1, d2′ ⊆ D2 that are
// linked. Since D1 is linked to D2, a shared attribute lies in some
// relation scheme on each side, hence in some child on each side.
func linkedChildPair(g *hypergraph.Graph, sd1, sd2 *strategy.Node) (hypergraph.Set, hypergraph.Set, bool) {
	for _, a := range []*strategy.Node{sd1.Left(), sd1.Right()} {
		for _, b := range []*strategy.Node{sd2.Left(), sd2.Right()} {
			if g.Linked(a.Set(), b.Set()) {
				return a.Set(), b.Set(), true
			}
		}
	}
	return 0, 0, false
}
