// Package guard is the resource-governance layer of the reproduction:
// it bounds the engine's exponential evaluation machinery so that a
// slightly-too-large input aborts cleanly instead of becoming an
// unbounded memory and CPU sink.
//
// The paper's cost measure τ is exactly the size of intermediate
// results, and the memoizing Evaluator materializes up to 2^n subset
// states, so the natural budgets are
//
//   - tuples: total intermediate tuples materialized (Σ τ per join),
//   - states: distinct materialized subsets plus DP states examined,
//   - steps:  join steps executed (one per materialization).
//
// A Guard carries those budgets together with a context.Context whose
// deadline or cancellation is polled from the evaluation hot loops.
// Exceeding a budget surfaces as a *BudgetError (errors.Is-matchable
// against ErrBudgetExceeded); cancellation surfaces as a *CancelError
// wrapping the context's error. Both carry the phase label current when
// the limit tripped, so reports can name exactly what was cut.
//
// All methods are safe on a nil *Guard (they become no-ops), so
// ungoverned call paths keep working unchanged, and safe for concurrent
// use, so the parallel prewarmer's workers may share one Guard.
//
// The package also provides the panic machinery the engine uses to
// abort out of deep recursion and enumeration callbacks without
// threading errors through every signature: Abort panics with a
// distinguished value, Trap recovers exactly that value at the library
// edges, and Protect additionally converts any other panic (an internal
// invariant violation, malformed input reaching a relation panic) into
// a *PanicError instead of crashing the process.
package guard

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// ErrBudgetExceeded is the sentinel matched by errors.Is for every
// budget trip, whatever the resource.
var ErrBudgetExceeded = errors.New("resource budget exceeded")

// ErrFaultInjected is the default error produced by deterministic fault
// injection (Limits.FaultStep).
var ErrFaultInjected = errors.New("guard: injected fault")

// Limits configures a Guard's budgets. Zero values mean "unlimited".
type Limits struct {
	// MaxTuples bounds the total number of intermediate tuples
	// materialized (the running sum of τ over executed joins).
	MaxTuples int64
	// MaxStates bounds the number of distinct states examined:
	// materialized evaluator subsets plus optimizer DP states.
	MaxStates int64
	// MaxSteps bounds the number of join steps executed.
	MaxSteps int64
	// FaultStep, when positive, deterministically fails every join step
	// numbered FaultStep or later with FaultErr — the hook that makes
	// the abort paths themselves testable (e.g. cancelling evaluation
	// at exactly the k-th join of a prewarm level).
	FaultStep int64
	// FaultErr overrides the error injected at FaultStep; nil selects
	// ErrFaultInjected.
	FaultErr error
}

// BudgetError is the typed error for an exceeded budget.
type BudgetError struct {
	Resource string // "tuples", "states" or "steps"
	Spent    int64
	Limit    int64
	Phase    string
}

// Error describes the exceeded budget, its spend and its phase.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("guard: %s budget exceeded in phase %q: spent %d, limit %d",
		e.Resource, e.Phase, e.Spent, e.Limit)
}

// Is matches BudgetErrors against the ErrBudgetExceeded sentinel.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// CancelError is the typed error for evaluation cut short by the
// guard's context (deadline or explicit cancellation).
type CancelError struct {
	Phase string
	Cause error
}

// Error describes the cancellation and the phase it interrupted.
func (e *CancelError) Error() string {
	return fmt.Sprintf("guard: evaluation cancelled in phase %q: %v", e.Phase, e.Cause)
}

// Unwrap exposes the context error, so errors.Is(err,
// context.DeadlineExceeded) and errors.Is(err, context.Canceled) work.
func (e *CancelError) Unwrap() error { return e.Cause }

// Tripped reports whether err is a resource-governance abort: a budget
// trip, a context cancellation, or an injected fault. Callers use it to
// pick the graceful-degradation path rather than treating the error as
// a hard failure.
func Tripped(err error) bool {
	if err == nil {
		return false
	}
	var ce *CancelError
	return errors.Is(err, ErrBudgetExceeded) ||
		errors.Is(err, ErrFaultInjected) ||
		errors.As(err, &ce) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, context.Canceled)
}

// ctxPollInterval is how many Tick calls elapse between context polls;
// ticks happen on every memoized size lookup, so polling each one would
// dominate the enumeration hot loops.
const ctxPollInterval = 64

// Guard carries a context plus resource budgets through the engine's
// hot loops. The zero value and the nil pointer are both valid,
// unlimited, context-free guards.
type Guard struct {
	ctx context.Context
	lim Limits

	mu     sync.Mutex
	tuples int64
	states int64
	steps  int64
	ticks  int64
	phase  string
}

// New creates a Guard over ctx with the given limits. A nil ctx means
// context.Background().
func New(ctx context.Context, lim Limits) *Guard {
	if ctx == nil {
		//lint:ignore ctxflow the documented nil-ctx API default: New is where callers hand a context in, so there is no caller context to detach from
		ctx = context.Background()
	}
	return &Guard{ctx: ctx, lim: lim}
}

// Context returns the guard's context (context.Background for nil or
// context-free guards).
func (g *Guard) Context() context.Context {
	if g == nil || g.ctx == nil {
		//lint:ignore ctxflow the zero/nil Guard is documented as context-free; Background is its defined context, not a detached root
		return context.Background()
	}
	return g.ctx
}

// SetPhase labels the work that follows; the label is embedded in any
// subsequent governance error so reports can name what was cut.
func (g *Guard) SetPhase(phase string) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.phase = phase
	g.mu.Unlock()
}

// Phase returns the current phase label.
func (g *Guard) Phase() string {
	if g == nil {
		return ""
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.phase
}

// Spent reports the resources consumed so far: tuples materialized,
// states examined, join steps executed.
func (g *Guard) Spent() (tuples, states, steps int64) {
	if g == nil {
		return 0, 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tuples, g.states, g.steps
}

// Usage pairs a resource's spend with its configured limit (0 =
// unlimited).
type Usage struct {
	// Spent is the amount consumed so far.
	Spent int64 `json:"spent"`
	// Limit is the configured budget; 0 means unlimited.
	Limit int64 `json:"limit"`
}

// Snapshot is an atomic copy of a guard's ledger: the phase label,
// every spent/limit pair, and the context deadline, all read under one
// lock acquisition. Use it instead of separate Spent()+Phase() calls
// when workers may still be charging concurrently — the pair can tear
// (spend from one phase, label from the next), the snapshot cannot.
type Snapshot struct {
	// Phase is the phase label current when the snapshot was taken.
	Phase string `json:"phase"`
	// HasDeadline reports whether the guard's context carries a
	// deadline; when false, Deadline is the zero time.
	HasDeadline bool `json:"hasDeadline"`
	// Deadline is the wall-clock instant the guard's context expires.
	// Consumers compute time remaining against their own clock via
	// Remaining — the snapshot itself never reads the clock, so taking
	// one stays deterministic.
	Deadline time.Time `json:"deadline"`
	// Tuples is the intermediate-tuple ledger (the running τ sum).
	Tuples Usage `json:"tuples"`
	// States is the evaluator-subset + DP-state ledger.
	States Usage `json:"states"`
	// Steps is the join-step ledger.
	Steps Usage `json:"steps"`
}

// Remaining reports the time left until the snapshot's deadline as of
// now, and whether a deadline exists at all. A negative duration means
// the deadline already passed. The serving layer uses this to compute
// Retry-After hints from the deadlines of in-flight requests.
func (s Snapshot) Remaining(now time.Time) (time.Duration, bool) {
	if !s.HasDeadline {
		return 0, false
	}
	return s.Deadline.Sub(now), true
}

// Snapshot returns an atomic copy of the guard's phase, spend/limit
// ledger and deadline. The nil guard snapshots as all zeros.
func (g *Guard) Snapshot() Snapshot {
	if g == nil {
		return Snapshot{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	snap := Snapshot{
		Phase:  g.phase,
		Tuples: Usage{Spent: g.tuples, Limit: g.lim.MaxTuples},
		States: Usage{Spent: g.states, Limit: g.lim.MaxStates},
		Steps:  Usage{Spent: g.steps, Limit: g.lim.MaxSteps},
	}
	if g.ctx != nil {
		// The context is immutable after New, so reading its deadline
		// under g.mu keeps the whole snapshot tear-free even while
		// workers trip budgets concurrently.
		snap.Deadline, snap.HasDeadline = g.ctx.Deadline()
	}
	return snap
}

// cancelErrLocked wraps the context error; g.mu must be held.
func (g *Guard) cancelErrLocked(cause error) error {
	return &CancelError{Phase: g.phase, Cause: cause}
}

// Err performs a non-blocking cancellation check, returning a
// *CancelError when the guard's context is done.
func (g *Guard) Err() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	if cause := g.ctx.Err(); cause != nil {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.cancelErrLocked(cause)
	}
	return nil
}

// Tick is the cheap per-operation check for enumeration and memo-hit
// hot loops: it polls the context every ctxPollInterval calls. It
// charges no budget.
func (g *Guard) Tick() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	g.mu.Lock()
	g.ticks++
	poll := g.ticks%ctxPollInterval == 0
	g.mu.Unlock()
	if poll {
		return g.Err()
	}
	return nil
}

// ChargeEval charges one join step materializing resultTuples
// intermediate tuples plus one evaluator state, checking the fault
// hook, the step, tuple and state budgets, and the context. The counts
// stay charged even when a budget is exceeded, so the spend ledger
// reflects work actually performed; budget checks compare the running
// totals against the limits, which means a warm memo can still serve a
// degradation fallback after a trip (memo hits charge nothing).
func (g *Guard) ChargeEval(resultTuples int) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.steps++
	g.states++
	g.tuples += int64(resultTuples)
	if g.lim.FaultStep > 0 && g.steps >= g.lim.FaultStep {
		if g.lim.FaultErr != nil {
			return g.lim.FaultErr
		}
		return ErrFaultInjected
	}
	if g.lim.MaxSteps > 0 && g.steps > g.lim.MaxSteps {
		return &BudgetError{Resource: "steps", Spent: g.steps, Limit: g.lim.MaxSteps, Phase: g.phase}
	}
	if g.lim.MaxTuples > 0 && g.tuples > g.lim.MaxTuples {
		return &BudgetError{Resource: "tuples", Spent: g.tuples, Limit: g.lim.MaxTuples, Phase: g.phase}
	}
	if g.lim.MaxStates > 0 && g.states > g.lim.MaxStates {
		return &BudgetError{Resource: "states", Spent: g.states, Limit: g.lim.MaxStates, Phase: g.phase}
	}
	if g.ctx != nil {
		if cause := g.ctx.Err(); cause != nil {
			return g.cancelErrLocked(cause)
		}
	}
	return nil
}

// ChargeStates charges n DP states against the state budget (the
// optimizer's counterpart of ChargeEval; DP states examine memoized
// sizes but materialize nothing new).
func (g *Guard) ChargeStates(n int) error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.states += int64(n)
	if g.lim.MaxStates > 0 && g.states > g.lim.MaxStates {
		return &BudgetError{Resource: "states", Spent: g.states, Limit: g.lim.MaxStates, Phase: g.phase}
	}
	return nil
}

// --- abort / recovery machinery ---

// abortPanic is the distinguished panic value used to unwind out of
// deep recursion and enumeration callbacks when a budget trips.
type abortPanic struct{ err error }

// Abort unwinds the current evaluation with err; it must be paired with
// a deferred Trap or Protect at the library edge.
func Abort(err error) { panic(abortPanic{err}) }

// Must aborts on a non-nil error — the form the evaluation hot paths
// use after a charge.
func Must(err error) {
	if err != nil {
		Abort(err)
	}
}

// Trap, deferred at a library edge, converts an Abort into the returned
// error. Any other panic is re-raised untouched, so genuine bugs still
// crash loudly in tests.
func Trap(errp *error) {
	if r := recover(); r != nil {
		if a, ok := r.(abortPanic); ok {
			*errp = a.err
			return
		}
		panic(r)
	}
}

// PanicError is a recovered panic converted to an error at a process
// boundary, carrying the panic value and the stack at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error summarizes the recovered panic value.
func (e *PanicError) Error() string {
	return fmt.Sprintf("internal panic: %v", e.Value)
}

// Protect, deferred at a process boundary (cli.Run, the exported
// library facade), converts an Abort into its error and any other
// panic into a *PanicError, so malformed input or an internal
// invariant violation degrades to a reported error instead of a crash.
func Protect(errp *error) {
	if r := recover(); r != nil {
		if a, ok := r.(abortPanic); ok {
			*errp = a.err
			return
		}
		*errp = &PanicError{Value: r, Stack: debug.Stack()}
	}
}

// Recovered converts a recover() result into the error a panic boundary
// should surface: nil when there was no panic, the aborted error for a
// guard.Abort, and a *PanicError (with the stack at recovery time) for
// anything else. It is the goroutine-shaped counterpart of Protect —
// a worker cannot use a deferred Protect(&err) because each goroutine
// must route its error through a channel rather than a shared named
// return:
//
//	go func() {
//		defer wg.Done()
//		defer func() {
//			if err := guard.Recovered(recover()); err != nil {
//				errs <- err
//			}
//		}()
//		…
//	}()
func Recovered(r any) error {
	if r == nil {
		return nil
	}
	if a, ok := r.(abortPanic); ok {
		return a.err
	}
	return &PanicError{Value: r, Stack: debug.Stack()}
}
