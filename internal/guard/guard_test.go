package guard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilGuardIsNoOp(t *testing.T) {
	var g *Guard
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	if err := g.Tick(); err != nil {
		t.Fatal(err)
	}
	if err := g.ChargeEval(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := g.ChargeStates(1 << 30); err != nil {
		t.Fatal(err)
	}
	g.SetPhase("ignored")
	if g.Phase() != "" {
		t.Fatal("nil guard has no phase")
	}
	if g.Context() == nil {
		t.Fatal("nil guard context must be non-nil")
	}
}

func TestTupleBudget(t *testing.T) {
	g := New(nil, Limits{MaxTuples: 10})
	g.SetPhase("optimize:all")
	if err := g.ChargeEval(10); err != nil {
		t.Fatalf("at the limit: %v", err)
	}
	err := g.ChargeEval(1)
	if err == nil {
		t.Fatal("over the limit must fail")
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("not a budget error: %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("not typed: %v", err)
	}
	if be.Resource != "tuples" || be.Phase != "optimize:all" || be.Spent != 11 || be.Limit != 10 {
		t.Fatalf("wrong fields: %+v", be)
	}
	if !Tripped(err) {
		t.Fatal("budget errors are governance trips")
	}
}

func TestStateBudgetSharedByEvalAndDP(t *testing.T) {
	g := New(nil, Limits{MaxStates: 3})
	if err := g.ChargeEval(0); err != nil {
		t.Fatal(err)
	}
	if err := g.ChargeStates(2); err != nil {
		t.Fatal(err)
	}
	err := g.ChargeStates(1)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "states" {
		t.Fatalf("want states budget error, got %v", err)
	}
}

func TestStepBudget(t *testing.T) {
	g := New(nil, Limits{MaxSteps: 2})
	if err := g.ChargeEval(0); err != nil {
		t.Fatal(err)
	}
	if err := g.ChargeEval(0); err != nil {
		t.Fatal(err)
	}
	var be *BudgetError
	if err := g.ChargeEval(0); !errors.As(err, &be) || be.Resource != "steps" {
		t.Fatalf("want steps budget error, got %v", err)
	}
}

func TestCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	g.SetPhase("prewarm")
	if err := g.Err(); err != nil {
		t.Fatal(err)
	}
	cancel()
	err := g.Err()
	var ce *CancelError
	if !errors.As(err, &ce) {
		t.Fatalf("want CancelError, got %v", err)
	}
	if ce.Phase != "prewarm" || !errors.Is(err, context.Canceled) {
		t.Fatalf("wrong cancel error: %+v", ce)
	}
	if !Tripped(err) {
		t.Fatal("cancellation is a governance trip")
	}
	if err := g.ChargeEval(1); !errors.As(err, &ce) {
		t.Fatalf("charges observe cancellation: %v", err)
	}
}

func TestDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	g := New(ctx, Limits{})
	if err := g.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

func TestTickPollsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := New(ctx, Limits{})
	var err error
	for i := 0; i < 2*ctxPollInterval && err == nil; i++ {
		err = g.Tick()
	}
	if !Tripped(err) {
		t.Fatalf("ticks must observe cancellation within a poll interval: %v", err)
	}
}

func TestFaultInjection(t *testing.T) {
	g := New(nil, Limits{FaultStep: 3})
	for i := 0; i < 2; i++ {
		if err := g.ChargeEval(5); err != nil {
			t.Fatalf("step %d: %v", i+1, err)
		}
	}
	if err := g.ChargeEval(5); !errors.Is(err, ErrFaultInjected) {
		t.Fatalf("want injected fault at step 3, got %v", err)
	}
	// The fault is sticky: later steps keep failing deterministically.
	if err := g.ChargeEval(5); !errors.Is(err, ErrFaultInjected) {
		t.Fatal("fault must persist past its step")
	}
	if !Tripped(ErrFaultInjected) {
		t.Fatal("injected faults are governance trips")
	}

	custom := errors.New("boom")
	g2 := New(nil, Limits{FaultStep: 1, FaultErr: custom})
	if err := g2.ChargeEval(0); !errors.Is(err, custom) {
		t.Fatalf("custom fault error lost: %v", err)
	}
}

func TestSpentLedger(t *testing.T) {
	g := New(nil, Limits{MaxTuples: 5})
	g.ChargeEval(4)
	g.ChargeEval(4) // trips, but still charged
	g.ChargeStates(7)
	tuples, states, steps := g.Spent()
	if tuples != 8 || states != 9 || steps != 2 {
		t.Fatalf("ledger wrong: tuples=%d states=%d steps=%d", tuples, states, steps)
	}
}

func TestAbortTrap(t *testing.T) {
	sentinel := &BudgetError{Resource: "tuples", Spent: 2, Limit: 1}
	err := func() (err error) {
		defer Trap(&err)
		Must(sentinel)
		return nil
	}()
	if err != sentinel {
		t.Fatalf("trap lost the abort error: %v", err)
	}

	// Trap must re-raise foreign panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("foreign panic swallowed by Trap")
			}
		}()
		func() (err error) {
			defer Trap(&err)
			panic("genuine bug")
		}()
	}()
}

func TestProtectConvertsPanics(t *testing.T) {
	err := func() (err error) {
		defer Protect(&err)
		panic(fmt.Sprintf("invariant violated: %d", 42))
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want PanicError, got %v", err)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("stack missing")
	}

	inner := &BudgetError{Resource: "states", Spent: 9, Limit: 8}
	err = func() (err error) {
		defer Protect(&err)
		Abort(inner)
		return nil
	}()
	if err != inner {
		t.Fatalf("protect must unwrap aborts: %v", err)
	}
}

func TestMustNilIsNoOp(t *testing.T) {
	Must(nil) // must not panic
}

// TestSnapshotAtomicity hammers ChargeEval from many goroutines (each
// charge adds exactly one step, one state and one tuple) while snapshots
// are taken concurrently. Every snapshot must be internally consistent —
// equal tuple/state/step spends — which the torn Spent()+Phase() pair
// cannot guarantee and Snapshot must. Run with -race this also checks
// the locking.
func TestSnapshotAtomicity(t *testing.T) {
	g := New(context.Background(), Limits{})
	g.SetPhase("prewarm")
	const workers, perWorker = 8, 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			s := g.Snapshot()
			if s.Tuples.Spent != s.States.Spent || s.States.Spent != s.Steps.Spent {
				t.Errorf("torn snapshot: %+v", s)
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				_ = g.ChargeEval(1)
			}
		}()
	}
	wg.Wait()
	<-done
	s := g.Snapshot()
	if s.Phase != "prewarm" {
		t.Errorf("phase = %q", s.Phase)
	}
	want := int64(workers * perWorker)
	if s.Tuples.Spent != want || s.States.Spent != want || s.Steps.Spent != want {
		t.Errorf("final snapshot = %+v, want %d each", s, want)
	}
}

// TestSnapshotCarriesLimits pins the spent/limit pairing the CLI's
// tripped-run report prints.
func TestSnapshotCarriesLimits(t *testing.T) {
	g := New(context.Background(), Limits{MaxTuples: 10, MaxStates: 20, MaxSteps: 30})
	_ = g.ChargeEval(4)
	s := g.Snapshot()
	if s.Tuples != (Usage{Spent: 4, Limit: 10}) {
		t.Errorf("tuples = %+v", s.Tuples)
	}
	if s.States != (Usage{Spent: 1, Limit: 20}) {
		t.Errorf("states = %+v", s.States)
	}
	if s.Steps != (Usage{Spent: 1, Limit: 30}) {
		t.Errorf("steps = %+v", s.Steps)
	}
	var nilG *Guard
	if nilG.Snapshot() != (Snapshot{}) {
		t.Error("nil guard snapshot not zero")
	}
}

// TestSnapshotCarriesDeadline pins the deadline plumbing the serving
// layer's Retry-After computation reads: a deadline context surfaces in
// the snapshot, Remaining is measured against a caller-supplied clock,
// and deadline-free guards report no deadline.
func TestSnapshotCarriesDeadline(t *testing.T) {
	deadline := time.Now().Add(42 * time.Second)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	g := New(ctx, Limits{MaxTuples: 5})
	s := g.Snapshot()
	if !s.HasDeadline || !s.Deadline.Equal(deadline) {
		t.Fatalf("snapshot deadline = (%v, %v), want (%v, true)", s.Deadline, s.HasDeadline, deadline)
	}
	now := deadline.Add(-10 * time.Second)
	if rem, ok := s.Remaining(now); !ok || rem != 10*time.Second {
		t.Fatalf("Remaining = (%v, %v), want (10s, true)", rem, ok)
	}
	// Past the deadline, Remaining goes negative rather than clamping:
	// the caller decides how to render an expired budget.
	if rem, ok := s.Remaining(deadline.Add(time.Second)); !ok || rem >= 0 {
		t.Fatalf("Remaining past deadline = (%v, %v), want negative", rem, ok)
	}

	free := New(context.Background(), Limits{})
	if s := free.Snapshot(); s.HasDeadline {
		t.Fatalf("deadline-free guard reports a deadline: %+v", s)
	}
	if _, ok := free.Snapshot().Remaining(time.Now()); ok {
		t.Fatal("Remaining ok on a deadline-free guard")
	}
}

// TestSnapshotDeadlineRaceFree snapshots concurrently with budget trips;
// -race verifies the deadline read shares the ledger's synchronization.
func TestSnapshotDeadlineRaceFree(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	g := New(ctx, Limits{MaxTuples: 100})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = g.ChargeEval(3) // trips past 100 and keeps charging
			}
		}()
	}
	for i := 0; i < 500; i++ {
		s := g.Snapshot()
		if !s.HasDeadline {
			t.Fatal("deadline lost under concurrent trips")
		}
	}
	wg.Wait()
}

func TestRecoveredConvertsPanicValues(t *testing.T) {
	if err := Recovered(nil); err != nil {
		t.Errorf("Recovered(nil) = %v, want nil", err)
	}

	// An Abort unwinds into its original error, matching Trap/Protect.
	want := &BudgetError{Resource: "tuples", Spent: 2, Limit: 1}
	var got error
	func() {
		defer func() { got = Recovered(recover()) }()
		Abort(want)
	}()
	if got != want {
		t.Errorf("Recovered(Abort(err)) = %v, want the aborted error", got)
	}
	if !errors.Is(got, ErrBudgetExceeded) {
		t.Error("recovered abort lost its errors.Is identity")
	}

	// Any other panic becomes a *PanicError carrying value and stack —
	// the goroutine-boundary contract the prewarm workers rely on.
	func() {
		defer func() { got = Recovered(recover()) }()
		panic("worker invariant broken")
	}()
	var pe *PanicError
	if !errors.As(got, &pe) {
		t.Fatalf("Recovered(panic) = %T, want *PanicError", got)
	}
	if pe.Value != "worker invariant broken" || len(pe.Stack) == 0 {
		t.Errorf("PanicError lost value or stack: %+v", pe)
	}
}
