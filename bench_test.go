// Benchmarks: one target per table in the reproduction (see DESIGN.md's
// experiment index). Each E-* bench regenerates its table end to end, so
// `go test -bench=.` both measures the harness and re-checks every
// paper assertion (a failed assertion aborts the bench). The scaling
// benches at the bottom measure the primitive costs the tables are built
// from: joins, subset evaluation, and the four optimizer dynamic
// programs.
package multijoin_test

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"multijoin"
	"multijoin/internal/experiments"
)

// benchGuard returns a fresh resource guard with budgets far above any
// healthy iteration's spend, so the scaling benches double as regression
// tripwires: an evaluation blow-up aborts with a typed budget error
// instead of letting the bench run away. Fresh per iteration because
// budgets are cumulative.
func benchGuard() *multijoin.Guard {
	return multijoin.NewGuard(context.Background(),
		multijoin.GuardLimits{MaxTuples: 1 << 24, MaxStates: 1 << 22})
}

// runExperiment drives one registered experiment per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	info, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if sum := info.Run(io.Discard); !sum.OK {
			b.Fatalf("%s: %d/%d checks failed", id, sum.Violations, sum.Checked)
		}
	}
}

// E-intro: strategy-space sizes ((2n−3)!!, n!/2, per-shape CP-free counts).
func BenchmarkEnumerateStrategies(b *testing.B) { runExperiment(b, "E-intro") }

// E-ex1: Example 1's τ table (570/570/549 vs 546).
func BenchmarkExample1(b *testing.B) { runExperiment(b, "E-ex1") }

// E-ex2: Example 2's C1/C2 independence table.
func BenchmarkExample2(b *testing.B) { runExperiment(b, "E-ex2") }

// E-ex3: Example 3 (Theorem 1 necessity).
func BenchmarkExample3(b *testing.B) { runExperiment(b, "E-ex3") }

// E-ex4: Example 4 (Theorem 2 necessity; τ = 14/12/11).
func BenchmarkExample4(b *testing.B) { runExperiment(b, "E-ex4") }

// E-ex5: Example 5 (Theorem 3 necessity; unique bushy optimum).
func BenchmarkExample5(b *testing.B) { runExperiment(b, "E-ex5") }

// E-thm1: randomized Theorem 1 validation.
func BenchmarkTheorem1Validation(b *testing.B) { runExperiment(b, "E-thm1") }

// E-thm2: randomized Theorem 2 validation.
func BenchmarkTheorem2Validation(b *testing.B) { runExperiment(b, "E-thm2") }

// E-thm3: randomized Theorem 3 validation.
func BenchmarkTheorem3Validation(b *testing.B) { runExperiment(b, "E-thm3") }

// E-superkey: Section 4 superkey-joins ⟹ C3 table.
func BenchmarkSuperkeyApplication(b *testing.B) { runExperiment(b, "E-superkey") }

// E-lossless: Section 4 lossless-joins ⟹ C2 table (chase-driven).
func BenchmarkLosslessC2(b *testing.B) { runExperiment(b, "E-lossless") }

// E-c4: Section 5 acyclic + pairwise-consistent ⟹ C4 table.
func BenchmarkC4Acyclic(b *testing.B) { runExperiment(b, "E-c4") }

// E-intersect: Section 5 τ-optimal linear intersections.
func BenchmarkIntersection(b *testing.B) { runExperiment(b, "E-intersect") }

// E-gamma: best-linear vs best-bushy gap table.
func BenchmarkLinearVsBushyGap(b *testing.B) { runExperiment(b, "E-gamma") }

// E-space: optimizer effort per subspace table.
func BenchmarkOptimizerScaling(b *testing.B) { runExperiment(b, "E-space") }

// E-yannakakis: Section 5 reduction-bounded evaluation table.
func BenchmarkYannakakis(b *testing.B) { runExperiment(b, "E-yannakakis") }

// E-monotone: Section 5 monotone-strategy probes (claimed + open).
func BenchmarkMonotoneStrategies(b *testing.B) { runExperiment(b, "E-monotone") }

// E-union: Section 5 open question on strategies for unions.
func BenchmarkUnionStrategies(b *testing.B) { runExperiment(b, "E-union") }

// E-osborn: Section 5 lossless strategies among the τ-optima.
func BenchmarkOsbornLossless(b *testing.B) { runExperiment(b, "E-osborn") }

// E-greedy: smallest-result heuristic quality table.
func BenchmarkGreedyQuality(b *testing.B) { runExperiment(b, "E-greedy") }

// E-manyjoins: certified-subspace optimization at n = 16..60.
func BenchmarkManyJoins(b *testing.B) { runExperiment(b, "E-manyjoins") }

// E-estimate: System R estimates vs exact τ (regret + misclassification).
func BenchmarkEstimationRegret(b *testing.B) { runExperiment(b, "E-estimate") }

// --- primitive scaling benches ---

// BenchmarkNaturalJoin measures the hash join on two chain relations.
func BenchmarkNaturalJoin(b *testing.B) {
	for _, rows := range []int{100, 1000, 10000} {
		b.Run(itoa(rows), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			schemes := multijoin.GenerateSchemes(multijoin.ShapeChain, 2)
			db := multijoin.GenerateUniform(rng, schemes, rows, rows/2+1)
			r, s := db.Relation(0), db.Relation(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				multijoin.Join(r, s)
			}
		})
	}
}

// BenchmarkSubsetEvaluator measures materializing all 2^n subset joins.
func BenchmarkSubsetEvaluator(b *testing.B) {
	for _, n := range []int{6, 8, 10} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			db := multijoin.GenerateUniform(rng, multijoin.GenerateSchemes(multijoin.ShapeChain, n), 8, 4)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := multijoin.NewEvaluator(db).WithGuard(benchGuard())
				full := multijoin.Set(1)<<uint(n) - 1
				full.Subsets(func(s multijoin.Set) bool {
					ev.Size(s)
					return true
				})
			}
		})
	}
}

// BenchmarkOptimizeSpaces measures each DP on a 10-relation chain over
// superkey-join data (bounded intermediates isolate DP cost from join
// fan-out).
func BenchmarkOptimizeSpaces(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	db := multijoin.GenerateDiagonal(rng, multijoin.GenerateSchemes(multijoin.ShapeChain, 10), 6, 0.4)
	spaces := map[string]multijoin.SearchSpace{
		"all":          multijoin.SpaceAll,
		"linear":       multijoin.SpaceLinear,
		"no-cp":        multijoin.SpaceNoCP,
		"linear-no-cp": multijoin.SpaceLinearNoCP,
	}
	for name, sp := range spaces {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := multijoin.NewEvaluator(db).WithGuard(benchGuard())
				if _, err := multijoin.OptimizeGuarded(ev, sp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGreedyHeuristic measures the smallest-result heuristic on the
// same instance as BenchmarkOptimizeSpaces.
func BenchmarkGreedyHeuristic(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	db := multijoin.GenerateDiagonal(rng, multijoin.GenerateSchemes(multijoin.ShapeChain, 10), 6, 0.4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := multijoin.NewEvaluator(db).WithGuard(benchGuard())
		if _, err := multijoin.GreedyGuarded(ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConditionCheck measures the exhaustive condition checkers,
// the most subset-hungry component.
func BenchmarkConditionCheck(b *testing.B) {
	for _, n := range []int{4, 5, 6} {
		b.Run(itoa(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(4))
			db := multijoin.GenerateDiagonal(rng, multijoin.GenerateSchemes(multijoin.ShapeChain, n), 8, 0.5)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev := multijoin.NewEvaluator(db)
				multijoin.CheckAllConditions(ev)
			}
		})
	}
}

// BenchmarkFullReduce measures the Bernstein–Chiu reducer.
func BenchmarkFullReduce(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	db := multijoin.GenerateUniform(rng, multijoin.GenerateSchemes(multijoin.ShapeChain, 8), 200, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := multijoin.FullReduce(db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRewritePipeline measures AvoidCPRewrite + LinearizeRewrite on
// a worst-case bushy CP-heavy input over superkey data.
func BenchmarkRewritePipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	db := multijoin.GenerateDiagonal(rng, multijoin.GenerateSchemes(multijoin.ShapeChain, 6), 9, 0.6)
	bad := multijoin.Combine(
		multijoin.Combine(multijoin.Leaf(0), multijoin.Leaf(3)),
		multijoin.Combine(
			multijoin.Combine(multijoin.Leaf(1), multijoin.Leaf(5)),
			multijoin.Combine(multijoin.Leaf(2), multijoin.Leaf(4))))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ev := multijoin.NewEvaluator(db)
		noCP := multijoin.AvoidCPRewrite(ev, bad)
		multijoin.LinearizeRewrite(ev, noCP)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// BenchmarkPrewarmParallel measures materializing all connected subsets
// of a 16-relation chain with 1 vs many workers (the Section 1 parallel-
// machines motivation, applied to the evaluator). The speedup tracks the
// machine's core count: on a single-core runner the two variants tie
// (correctness is what the tests pin down; PrewarmConnected is verified
// byte-identical to the sequential evaluator under -race).
func BenchmarkPrewarmParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	// Size-stable data (domain ≈ rows keeps joins near the base size), so
	// the bench measures the worker pool rather than join fan-out.
	db := multijoin.GenerateUniform(rng, multijoin.GenerateSchemes(multijoin.ShapeChain, 16), 2000, 2000)
	for _, workers := range []int{1, 4} {
		b.Run(itoa(workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				multijoin.PrewarmConnected(db, workers)
			}
		})
	}
}
