package multijoin_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"multijoin"
)

// TestPrintCorpusExpectations is a helper to regenerate the expectation
// table; run with -run TestPrintCorpusExpectations -v and copy.
func TestPrintCorpusExpectations(t *testing.T) {
	if os.Getenv("PRINT_CORPUS") == "" {
		t.Skip("set PRINT_CORPUS=1 to print")
	}
	entries, _ := os.ReadDir(filepath.Join("testdata", "corpus"))
	var names []string
	for _, e := range entries {
		names = append(names, e.Name()[:len(e.Name())-5])
	}
	sort.Strings(names)
	for _, name := range names {
		db := loadCorpus(t, name)
		an, err := multijoin.Analyze(db)
		if err != nil {
			t.Fatal(err)
		}
		h := func(c multijoin.Condition) bool {
			for _, rep := range an.Profile.Reports {
				if rep.Cond == c {
					return rep.Holds
				}
			}
			return false
		}
		cost := func(sp multijoin.SearchSpace) int {
			if r, ok := an.Result(sp); ok {
				return r.Cost
			}
			return -1
		}
		fmt.Printf("\t%q: {\n\t\tconnected: %v,\n\t\tc1: %v, c1s: %v, c2: %v, c3: %v, c4: %v,\n\t\tall: %d, noCP: %d, linear: %d, linNoCP: %d,\n\t},\n",
			name, an.Profile.Connected,
			h(multijoin.C1), h(multijoin.C1Strict), h(multijoin.C2), h(multijoin.C3), h(multijoin.C4),
			cost(multijoin.SpaceAll), cost(multijoin.SpaceNoCP), cost(multijoin.SpaceLinear), cost(multijoin.SpaceLinearNoCP))
	}
}
