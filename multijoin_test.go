package multijoin_test

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"multijoin"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	// The README quickstart, as a test: build a database, check
	// conditions, optimize, compare subspaces.
	r1 := multijoin.RelationFromStrings("R1", "AB", "1 x", "2 y")
	r2 := multijoin.RelationFromStrings("R2", "BC", "x 7", "y 8")
	r3 := multijoin.RelationFromStrings("R3", "CD", "7 p", "8 q")
	db := multijoin.NewDatabase(r1, r2, r3)
	ev := multijoin.NewEvaluator(db)

	res, err := multijoin.Optimize(ev, multijoin.SpaceAll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy == nil || res.Cost <= 0 {
		t.Fatalf("unexpected result %+v", res)
	}
	lin, err := multijoin.Optimize(ev, multijoin.SpaceLinearNoCP)
	if err != nil {
		t.Fatal(err)
	}
	if lin.Cost < res.Cost {
		t.Fatal("restricted space cannot beat the full space")
	}
}

func TestPublicAPIAnalyzeExample5(t *testing.T) {
	db := multijoin.ExampleDatabase(5)
	an, err := multijoin.Analyze(db)
	if err != nil {
		t.Fatal(err)
	}
	var sawTheorem2 bool
	for _, c := range an.Certificates {
		if c.Theorem == multijoin.TheoremTwo {
			sawTheorem2 = true
		}
	}
	if !sawTheorem2 {
		t.Fatal("Example 5 should certify Theorem 2")
	}
	if err := multijoin.VerifyCertificates(an); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIExampleDatabases(t *testing.T) {
	for i := 1; i <= 5; i++ {
		if db := multijoin.ExampleDatabase(i); db.Len() < 3 {
			t.Errorf("example %d too small", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExampleDatabase(0) must panic")
		}
	}()
	multijoin.ExampleDatabase(0)
}

func TestPublicAPICounts(t *testing.T) {
	if got := multijoin.CountStrategies(4).Int64(); got != 15 {
		t.Fatalf("CountStrategies(4) = %d, want 15 (the paper's 3 + 12)", got)
	}
	if got := multijoin.CountLinearStrategies(4).Int64(); got != 12 {
		t.Fatalf("CountLinearStrategies(4) = %d, want 12", got)
	}
}

func TestPublicAPIConditionsAndRewrites(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	db := multijoin.GenerateDiagonal(rng, multijoin.GenerateSchemes(multijoin.ShapeChain, 4), 7, 0.6)
	ev := multijoin.NewEvaluator(db)
	if rep := multijoin.CheckCondition(ev, multijoin.C3); !rep.Holds {
		t.Fatalf("diagonal database should satisfy C3: %v", rep.Witness)
	}
	s := multijoin.Combine(
		multijoin.Combine(multijoin.Leaf(0), multijoin.Leaf(2)),
		multijoin.Combine(multijoin.Leaf(1), multijoin.Leaf(3)))
	nocp := multijoin.AvoidCPRewrite(ev, s)
	lin := multijoin.LinearizeRewrite(ev, nocp)
	if !lin.IsLinear() {
		t.Fatal("pipeline must linearize")
	}
	if lin.Cost(ev) > s.Cost(ev) {
		t.Fatal("pipeline must not increase τ under C3")
	}
}

func TestPublicAPIFDs(t *testing.T) {
	f, err := multijoin.ParseFD("B->C")
	if err != nil {
		t.Fatal(err)
	}
	cl := multijoin.Closure(multijoin.SchemaFromString("B"), []multijoin.FD{f})
	if cl.String() != "BC" {
		t.Fatalf("closure = %s", cl)
	}
	schemes := []multijoin.Schema{
		multijoin.SchemaFromString("AB"),
		multijoin.SchemaFromString("BC"),
	}
	if !multijoin.LosslessJoin(schemes, []multijoin.FD{f}) {
		t.Fatal("lossless under B->C")
	}
	if !multijoin.IsSuperkey(multijoin.SchemaFromString("B"), multijoin.SchemaFromString("BC"), []multijoin.FD{f}) {
		t.Fatal("B keys BC")
	}
}

func TestPublicAPISemijoinAndSetops(t *testing.T) {
	db := multijoin.NewDatabase(
		multijoin.RelationFromStrings("R1", "AB", "1 x", "2 y"),
		multijoin.RelationFromStrings("R2", "BC", "x 7"),
	)
	if multijoin.PairwiseConsistent(db) {
		t.Fatal("dangling tuple should break consistency")
	}
	reduced, err := multijoin.FullReduce(db)
	if err != nil {
		t.Fatal(err)
	}
	if !multijoin.PairwiseConsistent(reduced) {
		t.Fatal("reduction must restore consistency")
	}
	result, sizes, err := multijoin.Yannakakis(db)
	if err != nil {
		t.Fatal(err)
	}
	if result.Size() != 1 || len(sizes) != 1 {
		t.Fatalf("yannakakis: %v, %v", result, sizes)
	}

	a := multijoin.RelationFromStrings("A", "X", "1", "2")
	b := multijoin.RelationFromStrings("B", "X", "2", "3")
	if multijoin.IntersectAll(a, b).Size() != 1 || multijoin.UnionAll(a, b).Size() != 3 {
		t.Fatal("set operations wrong")
	}
}

func TestPublicAPIPluckGraft(t *testing.T) {
	s := multijoin.LeftDeep(0, 1, 2)
	rem, sub, err := multijoin.Pluck(s, multijoin.Set(1)<<2)
	if err != nil {
		t.Fatal(err)
	}
	back, err := multijoin.Graft(rem, sub, rem.Set())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(s) {
		t.Fatal("pluck/graft round trip failed")
	}
}

func TestPublicAPIEnumerate(t *testing.T) {
	count := 0
	multijoin.EnumerateStrategies(multijoin.Set(0b1111), func(*multijoin.Strategy) bool {
		count++
		return true
	})
	if count != 15 {
		t.Fatalf("enumerated %d, want 15", count)
	}
}

func TestPublicAPIGreedy(t *testing.T) {
	db := multijoin.ExampleDatabase(1)
	ev := multijoin.NewEvaluator(db)
	res := multijoin.GreedySmallestResult(ev)
	if res.Strategy == nil {
		t.Fatal("greedy returned nothing")
	}
	all, err := multijoin.Optimize(ev, multijoin.SpaceAll)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < all.Cost {
		t.Fatal("greedy cannot beat the optimum")
	}
}

func TestPublicAPIZipfAndUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	schemes := multijoin.GenerateSchemes(multijoin.ShapeStar, 3)
	u := multijoin.GenerateUniform(rng, schemes, 4, 3)
	z := multijoin.GenerateZipf(rng, schemes, 10, 10, 1.7)
	if u.Len() != 3 || z.Len() != 3 {
		t.Fatal("generators wrong")
	}
}

func TestPublicAPIResourceGovernance(t *testing.T) {
	db := multijoin.ExampleDatabase(5)

	// Generous budgets: analysis completes and is marked complete.
	g := multijoin.NewGuard(context.Background(),
		multijoin.GuardLimits{MaxTuples: 1 << 20, MaxStates: 1 << 20})
	an, err := multijoin.AnalyzeGuarded(db, g)
	if err != nil || !an.Complete() {
		t.Fatalf("governed analysis failed: err=%v truncated=%v", err, an.Truncated)
	}
	if err := multijoin.VerifyCertificates(an); err != nil {
		t.Fatal(err)
	}

	// A one-tuple budget trips with the exported sentinel and typed error.
	tight := multijoin.NewGuard(context.Background(), multijoin.GuardLimits{MaxTuples: 1})
	_, err = multijoin.AnalyzeGuarded(db, tight)
	if !errors.Is(err, multijoin.ErrBudgetExceeded) || !multijoin.Tripped(err) {
		t.Fatalf("want exported budget sentinel, got %v", err)
	}
	var be *multijoin.BudgetError
	if !errors.As(err, &be) || be.Resource != "tuples" {
		t.Fatalf("want typed tuple budget error, got %v", err)
	}

	// Guarded optimize and greedy on a governed evaluator.
	ev := multijoin.NewEvaluator(db).WithGuard(multijoin.NewGuard(context.Background(), multijoin.GuardLimits{}))
	if _, err := multijoin.OptimizeGuarded(ev, multijoin.SpaceAll); err != nil {
		t.Fatal(err)
	}
	if _, err := multijoin.GreedyGuarded(ev); err != nil {
		t.Fatal(err)
	}

	// Cancelled guarded prewarm returns the typed error and a usable
	// partial evaluator.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	warm, err := multijoin.PrewarmConnectedGuarded(db, 2, multijoin.NewGuard(ctx, multijoin.GuardLimits{}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want cancellation, got %v", err)
	}
	if warm == nil {
		t.Fatal("aborted prewarm must still return the partial evaluator")
	}
}
