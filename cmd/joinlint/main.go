// Command joinlint runs the project's static-analysis suite: twelve
// analyzers that machine-check the engine's own invariants (guard/obs
// mirroring, determinism of the cost-model core, stdio discipline,
// panic-message and panic-boundary conventions, JSON schema tagging,
// allocation discipline, span lifecycle, lock ordering, atomic-field
// hygiene, context threading, and the metric-name registry).
//
// Usage:
//
//	joinlint [-list] [-json] [packages]
//
// Packages default to ./... relative to the enclosing module root; the
// module root is found by walking up from the working directory, so
// joinlint runs correctly from any subdirectory. Exit status is 0 when
// the tree is clean, 1 when diagnostics were reported, and 2 on a
// loading failure.
//
// With -json the diagnostics are emitted as a JSON array on stdout —
// one object per finding with analyzer, file, line, column, message and
// suppressed fields. Suppressed findings (waived by //lint:ignore) are
// included in the JSON for auditability but never affect the exit
// status; the human-readable mode omits them entirely.
//
// Diagnostics may be suppressed one site at a time with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above; the reason is
// mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"multijoin/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the machine-readable form of one finding, stable
// for CI artifact consumers.
type jsonDiagnostic struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("joinlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array (suppressed findings included)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: joinlint [-list] [-json] [packages]\n\n"+
			"Runs the project invariant analyzers over the module (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, an := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", an.Name, an.Doc)
		}
		return 0
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "joinlint:", err)
		return 2
	}
	root, modulePath, err := analysis.FindModule(wd)
	if err != nil {
		fmt.Fprintln(stderr, "joinlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader(root, modulePath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "joinlint:", err)
		return 2
	}

	all := analysis.RunAnalyzersAll(loader.Fset, pkgs, analyzers)
	live := 0
	for _, d := range all {
		if !d.Suppressed {
			live++
		}
	}
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(all))
		for _, d := range all {
			out = append(out, jsonDiagnostic{
				Analyzer:   d.Analyzer,
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Column:     d.Pos.Column,
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "joinlint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			if !d.Suppressed {
				fmt.Fprintln(stdout, d)
			}
		}
	}
	if live > 0 {
		fmt.Fprintf(stderr, "joinlint: %d problem(s) in %d package(s)\n", live, len(pkgs))
		return 1
	}
	return 0
}
