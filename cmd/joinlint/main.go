// Command joinlint runs the project's static-analysis suite: six
// analyzers that machine-check the engine's own invariants (guard/obs
// mirroring, determinism of the cost-model core, stdio discipline,
// panic-message and panic-boundary conventions, JSON schema tagging).
//
// Usage:
//
//	joinlint [-list] [packages]
//
// Packages default to ./... relative to the enclosing module root; the
// module root is found by walking up from the working directory, so
// joinlint runs correctly from any subdirectory. Exit status is 0 when
// the tree is clean, 1 when diagnostics were reported, and 2 on a
// loading failure.
//
// Diagnostics may be suppressed one site at a time with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above; the reason is
// mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"multijoin/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("joinlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: joinlint [-list] [packages]\n\n"+
			"Runs the project invariant analyzers over the module (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, an := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", an.Name, an.Doc)
		}
		return 0
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "joinlint:", err)
		return 2
	}
	root, modulePath, err := analysis.FindModule(wd)
	if err != nil {
		fmt.Fprintln(stderr, "joinlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := analysis.NewLoader(root, modulePath)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "joinlint:", err)
		return 2
	}
	diags := analysis.RunAnalyzers(loader.Fset, pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "joinlint: %d problem(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}
