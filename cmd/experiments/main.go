// Command experiments regenerates every table of the reproduction — one
// experiment per table/figure indexed in DESIGN.md — and reports whether
// each table's paper-derived assertions held.
//
// Usage:
//
//	experiments            # run everything
//	experiments -list      # list experiment IDs
//	experiments -run E-ex1 # run one experiment
//
// The process exits nonzero if any experiment's checks fail, so the
// harness can gate CI on the reproduction staying faithful.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"multijoin/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "run a single experiment by ID (default: all)")
	flag.Parse()

	if *list {
		for _, info := range experiments.All() {
			fmt.Printf("%-14s %s\n", info.ID, info.Paper)
		}
		return
	}

	var selected []experiments.Info
	if *run != "" {
		info, ok := experiments.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(2)
		}
		selected = []experiments.Info{info}
	} else {
		selected = experiments.All()
	}

	failures := 0
	for i, info := range selected {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		sum := info.Run(os.Stdout)
		status := "OK"
		if !sum.OK {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %s — %s (%d checks, %d violations, %s)\n",
			status, info.ID, sum.Note, sum.Checked, sum.Violations,
			time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "\n%d experiment(s) failed their paper checks\n", failures)
		os.Exit(1)
	}
}
