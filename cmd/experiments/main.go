// Command experiments regenerates every table of the reproduction — one
// experiment per table/figure indexed in DESIGN.md — and reports whether
// each table's paper-derived assertions held.
//
// Usage:
//
//	experiments                  # run everything
//	experiments -list            # list experiment IDs
//	experiments -run E-ex1       # run one experiment
//	experiments -bench           # run the bench pipeline, write BENCH_joinopt.json
//	experiments -check-bench F   # validate a previously written bench report
//
// The process exits nonzero if any experiment's checks fail, so the
// harness can gate CI on the reproduction staying faithful; the bench
// mode emits the schema-versioned performance report CI archives per
// push.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"multijoin/internal/exitcode"
	"multijoin/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "run a single experiment by ID (default: all)")
	bench := flag.Bool("bench", false, "run the bench pipeline over the fixed corpus")
	benchOut := flag.String("bench-out", "BENCH_joinopt.json", "bench report output file")
	benchWorkers := flag.Int("bench-workers", 0, "prewarm workers for -bench (0 = GOMAXPROCS)")
	checkBench := flag.String("check-bench", "", "validate a bench report file and exit")
	flag.Parse()

	if *list {
		for _, info := range experiments.All() {
			fmt.Printf("%-14s %s\n", info.ID, info.Paper)
		}
		return
	}

	if *checkBench != "" {
		if err := checkBenchFile(*checkBench); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			// A report that fails validation is bad input, not an
			// internal failure — exit 3 per the project's code contract.
			os.Exit(exitcode.BadInput)
		}
		fmt.Printf("%s validates against the bench schema\n", *checkBench)
		return
	}

	if *bench {
		if err := runBench(*benchOut, *benchWorkers); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}

	var selected []experiments.Info
	if *run != "" {
		info, ok := experiments.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *run)
			os.Exit(2)
		}
		selected = []experiments.Info{info}
	} else {
		selected = experiments.All()
	}

	failures := 0
	for i, info := range selected {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		sum := info.Run(os.Stdout)
		status := "OK"
		if !sum.OK {
			status = "FAIL"
			failures++
		}
		fmt.Printf("[%s] %s — %s (%d checks, %d violations, %s)\n",
			status, info.ID, sum.Note, sum.Checked, sum.Violations,
			time.Since(start).Round(time.Millisecond))
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "\n%d experiment(s) failed their paper checks\n", failures)
		os.Exit(1)
	}
}

// runBench executes the bench pipeline, validates the report before
// writing it, and saves it to path.
func runBench(path string, workers int) error {
	rep, err := experiments.RunBench(context.Background(), os.Stdout, workers)
	if err != nil {
		return err
	}
	if err := experiments.ValidateBench(rep); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteBench(f, rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d cases, total wall %s)\n",
		path, rep.Totals.Cases, time.Duration(rep.Totals.WallNS).Round(time.Millisecond))
	return nil
}

// checkBenchFile decodes and validates a bench report — the CI gate for
// the archived artifact.
func checkBenchFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rep, err := experiments.DecodeBench(f)
	if err != nil {
		return err
	}
	return experiments.ValidateBench(rep)
}
