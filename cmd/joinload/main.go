// Command joinload drives a joinserve instance with a mixed-tenant
// workload and checks the service protocol as it goes: every 200 must
// parse as a response, every 429 must carry a usable Retry-After, and
// the outcome counts must partition the requests issued. The aggregate
// report — outcome counts, shed rate, cache hit rate, latency and
// shed-latency quantiles — is written to stdout as JSON, and a
// per-tenant-class latency/outcome breakdown goes to stderr at exit.
//
// Usage:
//
//	joinload -url http://127.0.0.1:8080 -requests 2000 -concurrency 64
//	joinload -url http://127.0.0.1:8080 -tenants free,standard,premium -execute
//	joinload -url http://127.0.0.1:8080 -examples 1,3,5 -analyze-every 4
//
// Exit codes: 0 = protocol clean, 1 = internal failure, 2 = usage,
// 3 = malformed input, 4 = protocol violations observed under load.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"multijoin/internal/database"
	"multijoin/internal/exitcode"
	"multijoin/internal/paperex"
	"multijoin/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("joinload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	url := fs.String("url", "http://127.0.0.1:8080", "base URL of the joinserve instance")
	requests := fs.Int("requests", 1000, "total requests to issue")
	concurrency := fs.Int("concurrency", 32, "concurrent workers")
	tenants := fs.String("tenants", "free,standard,premium", "comma-separated tenant classes to mix")
	examples := fs.String("examples", "1,3,5", "comma-separated paper examples (1-5) to query")
	execute := fs.Bool("execute", false, "ask the server to execute the chosen plans")
	noCache := fs.Bool("no-cache", false, "bypass the plan cache on every request")
	analyzeEvery := fs.Int("analyze-every", 0, "make every Nth case a /v1/analyze call (0 = query only)")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request client timeout")
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}

	cases, err := buildCases(*tenants, *examples, *execute, *noCache, *analyzeEvery)
	if err != nil {
		fmt.Fprintf(stderr, "joinload: %v\n", err)
		return exitcode.Classify(err)
	}

	doer := serve.ClientDoer{
		Client:  &http.Client{Timeout: *timeout},
		BaseURL: strings.TrimRight(*url, "/"),
	}
	report, err := serve.RunLoad(context.Background(), doer, serve.LoadConfig{
		Requests:    *requests,
		Concurrency: *concurrency,
		Cases:       cases,
	})
	if err != nil {
		fmt.Fprintf(stderr, "joinload: %v\n", err)
		return exitcode.Classify(err)
	}

	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(stderr, "joinload: %v\n", err)
		return exitcode.Internal
	}
	printTenantBreakdown(stderr, report)
	if report.Failed > 0 {
		fmt.Fprintf(stderr, "joinload: %d protocol violations (see violations in the report)\n", report.Failed)
		return exitcode.Budget
	}
	return exitcode.OK
}

// printTenantBreakdown writes the per-tenant-class latency and outcome
// breakdown to stderr — human-readable operator output, kept off stdout
// so the JSON report stays machine-parseable.
func printTenantBreakdown(stderr *os.File, report *serve.LoadReport) {
	if len(report.PerTenant) == 0 {
		return
	}
	names := make([]string, 0, len(report.PerTenant))
	for name := range report.PerTenant {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(stderr, "joinload: per-tenant breakdown:")
	for _, name := range names {
		ts := report.PerTenant[name]
		fmt.Fprintf(stderr,
			"  %-10s requests=%d ok=%d degraded=%d shed=%d refused=%d deadline=%d failed=%d p50=%v p99=%v\n",
			name, ts.Requests, ts.OK, ts.Degraded, ts.Shed, ts.Refused, ts.Deadline, ts.Failed,
			time.Duration(ts.LatencyP50NS), time.Duration(ts.LatencyP99NS))
	}
}

// buildCases expands the tenant × example cross product into the
// request mix.
func buildCases(tenantList, exampleList string, execute, noCache bool, analyzeEvery int) ([]serve.LoadCase, error) {
	var dbs []*database.Database
	for _, tok := range strings.Split(exampleList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			return nil, exitcode.Input(fmt.Errorf("bad example number %q: %w", tok, err))
		}
		db, err := exampleDB(n)
		if err != nil {
			return nil, err
		}
		dbs = append(dbs, db)
	}
	var cases []serve.LoadCase
	i := 0
	for _, tenant := range strings.Split(tenantList, ",") {
		tenant = strings.TrimSpace(tenant)
		for _, db := range dbs {
			body, err := serve.BuildRequestBody(db, tenant, execute, noCache)
			if err != nil {
				return nil, err
			}
			path := "/v1/query"
			i++
			if analyzeEvery > 0 && i%analyzeEvery == 0 {
				path = "/v1/analyze"
			}
			cases = append(cases, serve.LoadCase{Path: path, Tenant: tenant, Body: body})
		}
	}
	if len(cases) == 0 {
		return nil, exitcode.Input(fmt.Errorf("no cases: need at least one tenant and one example"))
	}
	return cases, nil
}

// exampleDB returns the paper example by number.
func exampleDB(n int) (*database.Database, error) {
	switch n {
	case 1:
		return paperex.Example1(), nil
	case 2:
		return paperex.Example2(), nil
	case 3:
		return paperex.Example3(), nil
	case 4:
		return paperex.Example4(), nil
	case 5:
		return paperex.Example5(), nil
	}
	return nil, exitcode.Input(fmt.Errorf("example %d out of range [1,5]", n))
}
