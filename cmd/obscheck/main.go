// Command obscheck validates the machine-readable observability
// artifacts the engine emits: metrics snapshots (joinopt -metrics-out),
// structured traces (joinopt -trace-out) and bench reports (experiments
// -bench, BENCH_joinopt.json). Each argument is sniffed by schema and
// must decode cleanly with no unknown fields; bench reports must also
// pass the bench validator. CI runs it to keep the JSON contracts
// honest.
//
// Usage:
//
//	obscheck FILE...
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"multijoin/internal/exitcode"
	"multijoin/internal/experiments"
	"multijoin/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: obscheck FILE...")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		if err := checkFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed {
		// An artifact failing its schema is malformed input to this
		// tool, so it exits 3, distinct from usage (2) and crashes (1).
		os.Exit(exitcode.BadInput)
	}
}

// checkFile sniffs the document's schema field and validates it with the
// matching strict decoder.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("not a JSON document: %w", err)
	}
	switch head.Schema {
	case obs.MetricsSchema:
		_, err = obs.DecodeMetrics(bytes.NewReader(data))
	case obs.TraceSchema:
		_, err = obs.DecodeTrace(bytes.NewReader(data))
	case obs.BenchSchema:
		var rep *experiments.BenchReport
		rep, err = experiments.DecodeBench(bytes.NewReader(data))
		if err == nil {
			err = experiments.ValidateBench(rep)
		}
	default:
		return fmt.Errorf("unknown schema %q", head.Schema)
	}
	return err
}
