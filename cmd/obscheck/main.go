// Command obscheck validates the machine-readable observability
// artifacts the engine emits: metrics snapshots (joinopt -metrics-out),
// structured traces (joinopt -trace-out), bench reports (experiments
// -bench, BENCH_joinopt.json) and flight-recorder documents (joinserve
// GET /debug/requests). Each argument is sniffed by schema and must
// decode cleanly with no unknown fields; bench reports must also pass
// the bench validator. With -prom the arguments are Prometheus text
// exposition (joinserve GET /metrics) instead of JSON, checked for
// well-formed families and sorted, type-consistent sample lines. CI
// runs it to keep the service's wire contracts honest.
//
// With -planning the bench reports' planning sections are additionally
// rendered as a human-readable regret table on stdout — CI uploads it
// as the regret artifact next to the raw JSON. With -acyclic the
// reports' Yannakakis fast-path sections are rendered the same way.
//
// Usage:
//
//	obscheck FILE...
//	obscheck -planning BENCH_FILE...
//	obscheck -acyclic BENCH_FILE...
//	obscheck -prom METRICS_FILE...
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"multijoin/internal/exitcode"
	"multijoin/internal/experiments"
	"multijoin/internal/obs"
	"multijoin/internal/serve"
)

func main() {
	fs := flag.NewFlagSet("obscheck", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	prom := fs.Bool("prom", false, "treat the files as Prometheus text exposition instead of JSON")
	planning := fs.Bool("planning", false, "after validating, print each bench report's planning regret table")
	acyclic := fs.Bool("acyclic", false, "after validating, print each bench report's acyclic fast-path table")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-prom|-planning|-acyclic] FILE...")
		os.Exit(2)
	}
	failed := false
	for _, path := range fs.Args() {
		check := checkFile
		if *prom {
			check = checkProm
		} else if *planning {
			check = checkPlanning
		} else if *acyclic {
			check = checkAcyclic
		}
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok\n", path)
	}
	if failed {
		// An artifact failing its schema is malformed input to this
		// tool, so it exits 3, distinct from usage (2) and crashes (1).
		os.Exit(exitcode.BadInput)
	}
}

// checkFile sniffs the document's schema field and validates it with the
// matching strict decoder.
func checkFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("not a JSON document: %w", err)
	}
	switch head.Schema {
	case obs.MetricsSchema:
		_, err = obs.DecodeMetrics(bytes.NewReader(data))
	case obs.TraceSchema:
		_, err = obs.DecodeTrace(bytes.NewReader(data))
	case serve.FlightSchema:
		_, err = serve.DecodeFlight(bytes.NewReader(data))
	case obs.BenchSchema:
		var rep *experiments.BenchReport
		rep, err = experiments.DecodeBench(bytes.NewReader(data))
		if err == nil {
			err = experiments.ValidateBench(rep)
		}
	default:
		return fmt.Errorf("unknown schema %q", head.Schema)
	}
	return err
}

// checkPlanning validates a bench report and prints its planning
// section as the CI regret artifact.
func checkPlanning(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := experiments.DecodeBench(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if err := experiments.ValidateBench(rep); err != nil {
		return err
	}
	experiments.WritePlanningTable(os.Stdout, rep.Planning)
	return nil
}

// checkAcyclic validates a bench report and prints its acyclic
// fast-path section as the CI separation artifact.
func checkAcyclic(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	rep, err := experiments.DecodeBench(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if err := experiments.ValidateBench(rep); err != nil {
		return err
	}
	experiments.WriteAcyclicTable(os.Stdout, rep.Acyclic)
	return nil
}

// checkProm validates one Prometheus text exposition file.
func checkProm(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	cerr := obs.CheckPrometheus(f)
	if err := f.Close(); cerr == nil {
		cerr = err
	}
	return cerr
}
