// Command joinopt analyzes a database in the framework of the paper: it
// checks conditions C1–C4, derives the theorem certificates saying which
// optimizer search-space restrictions are safe, and reports the τ-optimum
// strategy in each subspace.
//
// Usage:
//
//	joinopt -example 5                     # analyze a paper example (1–5)
//	joinopt -file db.json                  # analyze a database from JSON
//	joinopt -example 1 -strategies         # every strategy with its τ
//	joinopt -example 1 -cost '(R1 R3) (R2 R4)'   # trace one strategy
//	joinopt -gen chain -n 4 -seed 3 -reduce      # full reducer report
//
// Runs are budgetable (-timeout, -max-tuples, -max-states) and
// observable:
//
//	joinopt -example 1 -metrics-out m.json -trace-out t.json
//	joinopt -gen clique -n 8 -debug-addr :6060   # expvar + pprof while it runs
//
// The JSON format is documented in internal/database/json.go:
//
//	{"relations": [{"name": "R1", "attrs": ["A","B"], "rows": [["p","0"]]}]}
//
// Exit codes classify failures (internal/exitcode): 0 success, 1
// internal error, 2 usage, 3 malformed input, 4 resource budget
// tripped — so scripts can tell "raise the budget" from "fix the
// input" without parsing stderr.
package main

import (
	"context"
	"os"

	"multijoin/internal/cli"
)

func main() {
	os.Exit(cli.Run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}
