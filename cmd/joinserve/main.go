// Command joinserve serves the engine as a multi-tenant HTTP/JSON API.
//
//	POST /v1/analyze  full condition/certificate analysis + optima
//	POST /v1/query    plan (and optionally execute) one join query
//	GET  /healthz     liveness
//	GET  /readyz      readiness (503 once draining)
//
// Every request runs under a guard derived from its tenant class (free,
// standard, premium by default): a wall-clock deadline, tuple and state
// budgets, a bounded concurrency slot. When a class saturates, requests
// are shed with 429 and a Retry-After computed from in-flight
// deadlines. When a budget trips mid-request, the degradation ladder
// (exhaustive → dp → greedy → estimate) retries one rung down and the
// response says which rung answered. Repeat queries against unchanged
// data are answered from a plan cache keyed by hypergraph shape +
// statistics fingerprint.
//
// Usage:
//
//	joinserve -addr :8080
//	joinserve -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0
//	joinserve -addr :8080 -chaos-fault-every 7 -chaos-slow-every 5 -chaos-slow-by 50ms
//	joinserve -addr :8080 -flight-cap 256 -slow-threshold 250ms
//
// On SIGINT/SIGTERM the server flips /readyz to 503, waits -drain-grace
// for load balancers to notice, then finishes in-flight requests and
// exits; -metrics-out writes the final metrics snapshot on the way out.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"multijoin/internal/obs"
	"multijoin/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("joinserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	debugAddr := fs.String("debug-addr", "", "optional expvar/pprof debug listen address")
	cacheCap := fs.Int("cache-cap", 0, "plan cache capacity (0 = default 256)")
	drainGrace := fs.Duration("drain-grace", 2*time.Second, "wait after flipping readiness before refusing work")
	metricsOut := fs.String("metrics-out", "", "write the final metrics snapshot JSON here on shutdown")
	faultEvery := fs.Int64("chaos-fault-every", 0, "inject a fault into every Nth request (0 = off)")
	faultStep := fs.Int64("chaos-fault-step", 1, "join step at which injected faults fire")
	slowEvery := fs.Int64("chaos-slow-every", 0, "slow every Nth request (0 = off)")
	slowBy := fs.Duration("chaos-slow-by", 50*time.Millisecond, "delay injected into slowed requests")
	cancelEvery := fs.Int64("chaos-cancel-every", 0, "cancel every Nth request mid-execution (0 = off)")
	cancelAfter := fs.Duration("chaos-cancel-after", 10*time.Millisecond, "how far into a cancelled request the cancellation fires")
	flightCap := fs.Int("flight-cap", 0, "flight recorder ring capacity (0 = default 64)")
	slowThreshold := fs.Duration("slow-threshold", 0, "latency above which a request is retained in the flight ring (0 = default 1s)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	rec := obs.NewRecorder()
	srv, err := serve.New(serve.Config{
		PlanCacheCap:  *cacheCap,
		Recorder:      rec,
		FlightCap:     *flightCap,
		SlowThreshold: *slowThreshold,
		Chaos: serve.ChaosConfig{
			FaultEvery:  *faultEvery,
			FaultStep:   *faultStep,
			SlowEvery:   *slowEvery,
			SlowBy:      *slowBy,
			CancelEvery: *cancelEvery,
			CancelAfter: *cancelAfter,
		},
	})
	if err != nil {
		fmt.Fprintf(stderr, "joinserve: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "joinserve: %v\n", err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	if *debugAddr != "" {
		if _, dAddr, derr := obs.DebugServer(*debugAddr, rec); derr != nil {
			fmt.Fprintf(stderr, "joinserve: debug server: %v\n", derr)
			return 1
		} else {
			fmt.Fprintf(stdout, "joinserve: debug listening on %s\n", dAddr)
		}
	}

	// The smoke script greps this line for the bound address, so port 0
	// works in CI.
	fmt.Fprintf(stdout, "joinserve: listening on %s (tenants: %v)\n", ln.Addr(), srv.Tenants())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errCh:
		fmt.Fprintf(stderr, "joinserve: %v\n", err)
		return 1
	case sig := <-sigCh:
		fmt.Fprintf(stdout, "joinserve: %v, draining\n", sig)
	}

	// Drain protocol: readiness flips first, then a grace period lets
	// load balancers stop routing here, then in-flight requests finish.
	srv.BeginDrain()
	time.Sleep(*drainGrace)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(stderr, "joinserve: drain: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "joinserve: shutdown: %v\n", err)
	}

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintf(stderr, "joinserve: %v\n", err)
			return 1
		}
		werr := rec.WriteMetrics(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "joinserve: writing metrics: %v\n", werr)
			return 1
		}
	}
	fmt.Fprintln(stdout, "joinserve: drained, exiting")
	return 0
}
